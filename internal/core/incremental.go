package core

import (
	"fmt"
	"sort"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// snapEngine is the incremental form of buildModel: it folds the ROS
// event stream delta by delta, keeping Algorithm 1's per-PID extraction
// state machines, the caller/client search index, and per-callback
// accumulators alive between snapshots. A snapshot then materializes a
// Model from the accumulators in O(callbacks) instead of re-running the
// extraction over the whole buffered stream, so snapshot cost is
// proportional to the events observed since the previous snapshot, not
// to session length.
//
// Equivalence with the batch pipeline rests on which Algorithm 1
// lookups are stable under stream growth:
//
//   - findCaller is stable: a request's dds_write precedes its
//     take_request in (Time, Seq) order (the write causes the take), so
//     by the time the take is folded the index already holds the write,
//     and positions only ever append — the first match never changes.
//   - findClient is NOT stable: the take_response and
//     take_type_erased_response events that identify the dispatched
//     client follow the response's dds_write in time, so the answer for
//     an already-extracted write can change as the stream grows — from
//     "no client" (decoration #0 plus a diagnostic) to the real client
//     ID. Such lookups stay pending: every snapshot re-resolves them
//     against the current index, updating the owning callback's
//     decorated out-topic set and suppressing the diagnostic once a
//     client appears, until the answer is provably final (a dispatched
//     client found with every earlier take definitively skipped).
//
// All other attributes fold forward: merged callbacks accumulate stats,
// instances, and refcounted out-topics; timer periods keep an exact
// two-heap running median over inter-start gaps, matching the batch
// sort's upper-median element for any length.
type snapEngine struct {
	idx    *eventIndex // over the builder's ros buffer, grown in place
	folded int         // prefix of idx.events already folded

	// tte holds take_type_erased_response positions per PID, the
	// resumable form of findClient's inner forward scan: the outcome for
	// a take at position p is decided by the first entry past p.
	tte map[uint32][]ttePoint

	nodeOf   map[uint32]string
	machines map[uint32]*pidMachine

	// et receives closed-window execution times from the ModelBuilder's
	// log; entries are deleted as their callback-end events consume them.
	et     map[etKey]sim.Duration
	etSeen int

	pending []*pendingClient
}

type ttePoint struct {
	pos int
	ret uint64
}

func newSnapEngine() *snapEngine {
	return &snapEngine{
		idx:      newEventIndex(nil),
		tte:      make(map[uint32][]ttePoint),
		nodeOf:   make(map[uint32]string),
		machines: make(map[uint32]*pidMachine),
		et:       make(map[etKey]sim.Duration),
	}
}

// pidMachine is one PID's extractCallbacks loop, suspended between
// folds: the merged callback list, the diagnostics (some conditional on
// a pending client resolution), and the currently open instance.
type pidMachine struct {
	pid   uint32
	list  []*cbEntry
	diags []diagSlot
	cur   *curState
}

// diagSlot is one diagnostic position in a PID's extraction output. A
// slot tied to a pending client lookup is visible only while that
// lookup resolves to "no client", exactly when the batch extraction
// would emit it.
type diagSlot struct {
	d    Diagnostic
	pend *pendingClient
}

// curState mirrors the batch loop's cur/curStart/curStartSeq/curInst
// locals for the instance currently open on a PID.
type curState struct {
	cb       Callback // ID, Type, InTopic, IsSync accumulate here
	outs     []outContrib
	start    sim.Time
	startSeq uint64
	inst     Instance
}

// outContrib is one dds_write's contribution to a callback's decorated
// out-topic set: a fixed string, or a pending client lookup whose
// decoration can still change.
type outContrib struct {
	fixed string
	pend  *pendingClient
}

// cbEntry is one merged CBlist entry plus its incremental accumulators.
type cbEntry struct {
	cb Callback // canonical accumulator; OutTopics unused (see outRefs)

	// outRefs refcounts decorated out-topic strings. Pending client
	// re-resolution moves a contribution from one string to another, so
	// presence (count > 0), not membership, defines the set.
	outRefs   map[string]int
	outsCache []string
	outsDirty bool

	med medianTracker // inter-start gaps, for timer period estimates
}

func (e *cbEntry) addInstance(inst Instance) {
	if n := len(e.cb.Instances); n > 0 {
		e.med.push(inst.Start.Sub(e.cb.Instances[n-1].Start))
	}
	e.cb.Stats.Add(inst.ET)
	e.cb.Instances = append(e.cb.Instances, inst)
}

func (e *cbEntry) addOut(c outContrib) {
	s := c.fixed
	if c.pend != nil {
		c.pend.owner = e
		s = c.pend.curOut
	}
	if s == "" {
		return
	}
	e.outRefs[s]++
	e.outsDirty = true
}

// outs returns the current decorated out-topic set, sorted. The cache
// is rebuilt into a fresh allocation whenever the set changed, so
// slices handed to earlier snapshots are never mutated.
func (e *cbEntry) outs() []string {
	if e.outsDirty {
		out := make([]string, 0, len(e.outRefs))
		for s, n := range e.outRefs {
			if n > 0 {
				out = append(out, s)
			}
		}
		sort.Strings(out)
		e.outsCache = out
		e.outsDirty = false
	}
	return e.outsCache[:len(e.outsCache):len(e.outsCache)]
}

// period is the entry's timer-period estimate: the same upper-median
// inter-start gap EstimatePeriod computes by sorting, read off the
// running median in O(1).
func (e *cbEntry) period() sim.Duration {
	if len(e.cb.Instances) < 2 {
		return 0
	}
	return e.med.upperMedian()
}

// snapshotCallback materializes the entry as a fresh Callback whose
// slices are shared full-capacity-clamped: the engine keeps appending
// to its own backing arrays (in place, beyond the snapshot's length)
// while every handed-out snapshot stays fixed.
func (e *cbEntry) snapshotCallback(node string) *Callback {
	cb := e.cb
	cb.Node = node
	cb.Stats.Samples = clampDurations(cb.Stats.Samples)
	cb.Instances = clampInstances(cb.Instances)
	cb.OutTopics = e.outs()
	return &cb
}

// pendingClient is one unresolved findClient lookup, created at a
// response dds_write and re-resolved against the grown index at every
// snapshot until final.
type pendingClient struct {
	topic  string // response topic (the write's topic, also the lookup key)
	srcTS  int64
	owner  *cbEntry // merged entry holding the out-topic contribution; nil while the instance is open or discarded
	curOut string   // decorated string currently in owner's refcounts
	id     uint64
	final  bool
}

func (p *pendingClient) set(id uint64, final bool) {
	p.final = final
	if id == p.id {
		return
	}
	old := p.curOut
	p.id = id
	p.curOut = decorate(p.topic, id)
	if o := p.owner; o != nil {
		o.outRefs[old]--
		if o.outRefs[old] <= 0 {
			delete(o.outRefs, old)
		}
		o.outRefs[p.curOut]++
		o.outsDirty = true
	}
}

// fold advances the engine over the builder's buffers: ros is the full
// (Time, Seq)-sorted ROS event prefix observed so far and etLog the
// closed-window log; both only ever grow. The delta is indexed first
// and extracted second — the batch pipeline builds its index over the
// whole stream before extracting, so a caller search from inside the
// delta must already see writes later in the same delta.
func (g *snapEngine) fold(ros []trace.Event, etLog []etEntry) {
	for _, rec := range etLog[g.etSeen:] {
		g.et[rec.key] = rec.et
	}
	g.etSeen = len(etLog)

	g.idx.events = ros
	for i := g.folded; i < len(ros); i++ {
		e := ros[i]
		switch e.Kind {
		case trace.KindDDSWrite:
			k := topicTS{e.Topic, e.SrcTS}
			g.idx.writesBy[k] = append(g.idx.writesBy[k], i)
		case trace.KindTakeResponse:
			k := topicTS{dds.ServiceResponseTopic(e.Topic), e.SrcTS}
			g.idx.takeRespBy[k] = append(g.idx.takeRespBy[k], i)
		case trace.KindTakeTypeErased:
			g.tte[e.PID] = append(g.tte[e.PID], ttePoint{i, e.Ret})
		case trace.KindCreateNode:
			g.nodeOf[e.PID] = e.Node
		}
	}
	for i := g.folded; i < len(ros); i++ {
		g.machineFor(ros[i].PID).step(g, ros[i])
	}
	g.folded = len(ros)
}

func (g *snapEngine) machineFor(pid uint32) *pidMachine {
	m := g.machines[pid]
	if m == nil {
		m = &pidMachine{pid: pid}
		g.machines[pid] = m
	}
	return m
}

// takeET consumes one closed window's execution time. Each window is
// read exactly once (its callback-end event), so the entry is deleted
// to keep the transfer map at O(open + unconsumed) instead of O(all).
func (g *snapEngine) takeET(pid uint32, startSeq uint64) sim.Duration {
	k := etKey{pid, startSeq}
	d := g.et[k]
	delete(g.et, k)
	return d
}

// tteAfter finds the first take_type_erased_response of pid past pos —
// findClient's inner scan as a binary search over the per-PID position
// list. ok is false while no such event has been observed yet.
func (g *snapEngine) tteAfter(pid uint32, pos int) (ttePoint, bool) {
	list := g.tte[pid]
	i := sort.Search(len(list), func(i int) bool { return list[i].pos > pos })
	if i == len(list) {
		return ttePoint{}, false
	}
	return list[i], true
}

// resolve recomputes a pending client lookup against the current index,
// replicating findClient: walk the matching take_response events in
// stream order; the first whose next type-erased take returned 1 names
// the client; a take whose next type-erased take returned 0 is skipped
// for good; a take with no type-erased take yet is skipped for now. The
// answer is final only when a client was found and every earlier take
// was definitively skipped — otherwise later events could change it,
// exactly as a batch re-run over the longer stream could.
func (g *snapEngine) resolve(p *pendingClient) {
	positions := g.idx.takeRespBy[topicTS{p.topic, p.srcTS}]
	definitive := true
	for _, pos := range positions {
		take := g.idx.events[pos]
		tte, ok := g.tteAfter(take.PID, pos)
		if !ok {
			definitive = false
			continue
		}
		if tte.ret == 1 {
			p.set(take.CBID, definitive)
			return
		}
	}
	p.set(0, false)
}

// resolvePending re-resolves every open client lookup and drops the
// ones that became final.
func (g *snapEngine) resolvePending() {
	old := g.pending
	live := old[:0]
	for _, p := range old {
		g.resolve(p)
		if !p.final {
			live = append(live, p)
		}
	}
	for i := len(live); i < len(old); i++ {
		old[i] = nil // release finalized lookups
	}
	g.pending = live
}

// step folds one ROS event into the PID's extraction machine. The case
// structure and diagnostics mirror extractCallbacks exactly; the only
// differences are that out-topic decoration for responses goes through
// a pendingClient, and execution times come from the online fold.
func (m *pidMachine) step(g *snapEngine, e trace.Event) {
	switch {
	case e.Kind.IsCBStart(): // P2 / P5 / P9 / P12
		if m.cur != nil {
			m.diags = append(m.diags, diagSlot{d: Diagnostic{m.pid, e.Time,
				fmt.Sprintf("callback start %v while instance from %v still open", e.Kind, m.cur.start)}})
		}
		cur := &curState{start: e.Time, startSeq: e.Seq}
		cur.cb = Callback{PID: m.pid}
		switch e.Kind {
		case trace.KindTimerCBStart:
			cur.cb.Type = CBTimer
		case trace.KindSubCBStart:
			cur.cb.Type = CBSubscriber
		case trace.KindServiceCBStart:
			cur.cb.Type = CBService
		case trace.KindClientCBStart:
			cur.cb.Type = CBClient
		}
		m.cur = cur

	case e.Kind == trace.KindTimerCall && m.cur != nil: // P3
		m.cur.cb.ID = e.CBID

	case e.Kind.IsTake() && m.cur != nil: // P6 / P10 / P13
		cur := m.cur
		cur.cb.ID = e.CBID
		cur.inst.TakeSrcTS = e.SrcTS
		switch e.Kind {
		case trace.KindTakeResponse:
			respTopic := dds.ServiceResponseTopic(e.Topic)
			cur.cb.InTopic = decorate(respTopic, cur.cb.ID)
			cur.inst.TakeTopic = respTopic
		case trace.KindTakeRequest:
			reqTopic := dds.ServiceRequestTopic(e.Topic)
			caller := g.idx.findCaller(reqTopic, e.SrcTS)
			if caller == 0 {
				m.diags = append(m.diags, diagSlot{d: Diagnostic{m.pid, e.Time,
					fmt.Sprintf("no caller found for request on %s srcTS=%d", reqTopic, e.SrcTS)}})
			}
			cur.cb.InTopic = decorate(reqTopic, caller)
			cur.inst.TakeTopic = reqTopic
		default:
			cur.cb.InTopic = e.Topic
			cur.inst.TakeTopic = e.Topic
		}

	case e.Kind == trace.KindDDSWrite && m.cur != nil: // P16
		topic := e.Topic
		var contrib outContrib
		switch {
		case dds.IsRequestTopic(topic):
			contrib.fixed = decorate(topic, m.cur.cb.ID)
		case dds.IsResponseTopic(topic):
			p := &pendingClient{topic: topic, srcTS: e.SrcTS, curOut: decorate(topic, 0)}
			g.resolve(p)
			m.diags = append(m.diags, diagSlot{
				d: Diagnostic{m.pid, e.Time,
					fmt.Sprintf("no dispatched client found for response on %s srcTS=%d", topic, e.SrcTS)},
				pend: p,
			})
			if !p.final {
				g.pending = append(g.pending, p)
			}
			contrib.pend = p
		default:
			contrib.fixed = topic
		}
		m.cur.outs = append(m.cur.outs, contrib)
		m.cur.inst.Writes = append(m.cur.inst.Writes, Write{Topic: topic, SrcTS: e.SrcTS})

	case e.Kind == trace.KindTakeTypeErased && e.Ret == 0: // P14: will not dispatch
		m.cur = nil

	case e.Kind == trace.KindSyncSubscribe && m.cur != nil: // P7
		m.cur.cb.IsSync = true

	case e.Kind.IsCBEnd() && m.cur != nil: // P4 / P8 / P11 / P15
		cur := m.cur
		cur.inst.Start = cur.start
		cur.inst.End = e.Time
		cur.inst.ET = g.takeET(m.pid, cur.startSeq)
		m.merge(cur)
		m.cur = nil
	}
}

// merge folds a completed instance into the machine's CBlist, with
// addToList's matching rule: same ID, and for service entries also the
// same (caller-decorated) in-topic. Both sides of the comparison are
// stable under stream growth (caller decoration rests on findCaller),
// so merge decisions never need revisiting.
func (m *pidMachine) merge(cur *curState) {
	for _, e := range m.list {
		if e.cb.ID != cur.cb.ID {
			continue
		}
		if e.cb.Type == CBService && e.cb.InTopic != cur.cb.InTopic {
			continue
		}
		e.addInstance(cur.inst)
		for _, c := range cur.outs {
			e.addOut(c)
		}
		if cur.cb.IsSync {
			e.cb.IsSync = true
		}
		if e.cb.InTopic == "" {
			e.cb.InTopic = cur.cb.InTopic
		}
		return
	}
	e := &cbEntry{
		cb: Callback{PID: cur.cb.PID, Type: cur.cb.Type, ID: cur.cb.ID,
			InTopic: cur.cb.InTopic, IsSync: cur.cb.IsSync},
		outRefs: make(map[string]int),
	}
	e.addInstance(cur.inst)
	for _, c := range cur.outs {
		e.addOut(c)
	}
	m.list = append(m.list, e)
}

// materialize assembles a Model from the accumulators: fresh Callback
// headers over clamp-shared slices, node-sorted like buildModel, with
// diagnostics filtered by current pending resolutions and an open
// instance reported as truncated. The returned periodOf closes over the
// entries' running medians for buildDAG.
func (g *snapEngine) materialize() (*Model, func(*Callback) sim.Duration) {
	m := &Model{NodeOf: make(map[uint32]string, len(g.nodeOf))}
	pids := make([]uint32, 0, len(g.nodeOf))
	for pid, node := range g.nodeOf {
		m.NodeOf[pid] = node
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	entryOf := make(map[*Callback]*cbEntry)
	for _, pid := range pids {
		mach := g.machines[pid]
		if mach == nil {
			continue
		}
		for _, e := range mach.list {
			cb := e.snapshotCallback(g.nodeOf[pid])
			entryOf[cb] = e
			m.Callbacks = append(m.Callbacks, cb)
		}
		for _, slot := range mach.diags {
			if slot.pend == nil || slot.pend.id == 0 {
				m.Diags = append(m.Diags, slot.d)
			}
		}
		if mach.cur != nil {
			m.Diags = append(m.Diags, Diagnostic{pid, mach.cur.start,
				"instance open at end of trace (truncated)"})
		}
	}
	periodOf := func(cb *Callback) sim.Duration {
		if e := entryOf[cb]; e != nil {
			return e.period()
		}
		return cb.EstimatePeriod()
	}
	return m, periodOf
}

// medianTracker maintains the upper median of a growing multiset with
// two heaps: lo (a max-heap) holds the smaller floor(n/2) elements, hi
// (a min-heap) the larger ceil(n/2), so hi's root is element n/2 of the
// sorted multiset — exactly what EstimatePeriod's sort produces.
type medianTracker struct {
	lo, hi []sim.Duration
}

func (m *medianTracker) push(d sim.Duration) {
	if len(m.hi) == 0 || d >= m.hi[0] {
		heapPush(&m.hi, d, false)
	} else {
		heapPush(&m.lo, d, true)
	}
	if len(m.hi) > len(m.lo)+1 {
		heapPush(&m.lo, heapPop(&m.hi, false), true)
	} else if len(m.lo) > len(m.hi) {
		heapPush(&m.hi, heapPop(&m.lo, true), false)
	}
}

func (m *medianTracker) upperMedian() sim.Duration {
	if len(m.hi) == 0 {
		return 0
	}
	return m.hi[0]
}

// heapPush / heapPop implement a binary heap over a duration slice; max
// selects max-heap ordering.
func heapPush(h *[]sim.Duration, d sim.Duration, max bool) {
	s := append(*h, d)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapAbove(s[i], s[parent], max) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func heapPop(h *[]sim.Duration, max bool) sim.Duration {
	s := *h
	root := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && heapAbove(s[l], s[best], max) {
			best = l
		}
		if r < len(s) && heapAbove(s[r], s[best], max) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	*h = s
	return root
}

// heapAbove reports whether a should sit above b in the heap.
func heapAbove(a, b sim.Duration, max bool) bool {
	if max {
		return a > b
	}
	return a < b
}
