package core_test

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/msgfilters"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func tracedWorld(t *testing.T, cpus int, seed uint64) (*rclcpp.World, *tracers.Bundle) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return w, b
}

// TestMeasuredETMatchesGroundTruthUnderInterference is the paper's SYN
// validation: designed (constant) execution times must be recovered
// exactly by Algorithm 2 from the trace, even when the node is preempted
// by higher-priority interference on its CPU.
func TestMeasuredETMatchesGroundTruthUnderInterference(t *testing.T) {
	w, b := tracedWorld(t, 1, 42) // single CPU forces preemption

	victim := w.NewNode("victim", 2, sched.AffinityCPU(0))
	pub := victim.CreatePublisher("/out")
	victim.CreateTimer(50*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 7 * sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
	})

	intruder := w.NewNode("intruder", 9, sched.AffinityCPU(0)) // higher priority
	intruder.CreateTimer(13*sim.Millisecond, 3*sim.Millisecond, rclcpp.SimpleBody{
		ET: sim.Constant{Value: 2 * sim.Millisecond},
	})

	w.Run(2 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	m := core.ExtractModel(tr)

	var victimCB *core.Callback
	for _, cb := range m.Callbacks {
		if cb.Node == "victim" && cb.Type == core.CBTimer {
			victimCB = cb
		}
	}
	if victimCB == nil {
		t.Fatal("victim timer callback not extracted")
	}
	if victimCB.Stats.Count < 30 {
		t.Fatalf("only %d instances", victimCB.Stats.Count)
	}
	// Every measured sample must equal the designed 7ms exactly (virtual
	// time has no measurement noise); the wall window, however, must often
	// exceed 7ms because of preemption.
	for _, s := range victimCB.Stats.Samples {
		if s != 7*sim.Millisecond {
			t.Fatalf("measured ET %v != designed 7ms", s)
		}
	}
	preempted := 0
	for _, inst := range victimCB.Instances {
		if inst.End.Sub(inst.Start) > inst.ET {
			preempted++
		}
	}
	if preempted == 0 {
		t.Fatal("no instance was ever preempted; interference scenario broken")
	}
}

// TestServiceSplitIntoPerCallerVertices reproduces the paper's SV3 case:
// a service invoked from two different callers must appear as two
// vertices, keeping the computation chains disjoint.
func TestServiceSplitIntoPerCallerVertices(t *testing.T) {
	w, b := tracedWorld(t, 4, 7)

	server := w.NewNode("server", 5, 0)
	server.CreateService("sv3", sim.Constant{Value: sim.Millisecond}, nil)

	// Caller 1: a timer on node n1.
	n1 := w.NewNode("n1", 5, 0)
	cl1 := n1.CreateClient("sv3", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
	n1.CreateTimer(40*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 500 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) { cl1.Call(nil) },
	})

	// Caller 2: a subscriber on node n2, triggered from n1's second timer.
	n2 := w.NewNode("n2", 5, 0)
	cl2 := n2.CreateClient("sv3", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
	pubTrig := n1.CreatePublisher("/trig")
	n1.CreateTimer(60*sim.Millisecond, 5*sim.Millisecond, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 500 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) { pubTrig.Publish(1) },
	})
	n2.CreateSubscription("/trig", rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 700 * sim.Microsecond},
		Action: func(ctx *rclcpp.CallbackContext) { cl2.Call(nil) },
	})

	w.Run(2 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	d := core.Synthesize(tr)

	var serviceVerts []*core.Vertex
	for _, k := range d.VertexKeys() {
		if v := d.Vertices[k]; v.Type == core.CBService && !v.IsAnd {
			serviceVerts = append(serviceVerts, v)
		}
	}
	if len(serviceVerts) != 2 {
		t.Fatalf("service vertices = %d, want 2 (per-caller split): %v",
			len(serviceVerts), d.VertexKeys())
	}

	// The chains must not cross: the service vertex fed by the timer must
	// send its response edge to cl1's vertex only, and vice versa.
	for _, sv := range serviceVerts {
		ins := d.InEdges(sv.Key)
		outs := d.OutEdges(sv.Key)
		if len(ins) != 1 || len(outs) != 1 {
			t.Fatalf("service vertex %s has %d in / %d out edges", sv.Key, len(ins), len(outs))
		}
		from := d.Vertices[ins[0].From]
		to := d.Vertices[outs[0].To]
		switch {
		case from.Node == "n1" && to.Node != "n1":
			t.Fatalf("chain crosses: caller n1 but client %s", to.Node)
		case from.Node == "n2" && to.Node != "n2":
			t.Fatalf("chain crosses: caller n2 but client %s", to.Node)
		}
	}
}

// TestSyncSubscribersGetAndJunction reproduces the fusion structure of
// Fig. 3b: two sync subscribers feed an AND junction which feeds the
// downstream subscriber; no direct edges bypass the junction.
func TestSyncSubscribersGetAndJunction(t *testing.T) {
	w, b := tracedWorld(t, 4, 11)

	drv := w.NewNode("drivers", 5, 0)
	p1 := drv.CreatePublisher("/s1")
	p2 := drv.CreatePublisher("/s2")
	drv.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET: sim.Constant{Value: 100 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) {
			p1.Publish(1)
			p2.Publish(2)
		},
	})

	fusion := w.NewNode("fusion", 5, 0)
	fusedPub := fusion.CreatePublisher("/fused")
	msgfilters.New(fusion, msgfilters.Config{
		Topics:  []string{"/s1", "/s2"},
		FusedET: sim.Constant{Value: 2 * sim.Millisecond},
		Fused:   func(fc *msgfilters.FusedContext) { fusedPub.Publish(3) },
	})

	down := w.NewNode("down", 5, 0)
	down.CreateSubscription("/fused", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})

	w.Run(2 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	d := core.Synthesize(tr)

	var and *core.Vertex
	syncCount := 0
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		if v.IsAnd {
			and = v
		}
		if v.IsSync {
			syncCount++
		}
	}
	if and == nil {
		t.Fatalf("no AND junction: %v", d.VertexKeys())
	}
	if syncCount != 2 {
		t.Fatalf("sync vertices = %d, want 2", syncCount)
	}
	if and.Stats.Count != 0 {
		t.Fatal("AND junction must have zero execution time")
	}
	if n := len(d.InEdges(and.Key)); n != 2 {
		t.Fatalf("AND in-edges = %d, want 2", n)
	}
	outs := d.OutEdges(and.Key)
	if len(outs) != 1 || outs[0].Topic != "/fused" {
		t.Fatalf("AND out-edges = %v", outs)
	}
	downV := d.Vertices[outs[0].To]
	if downV.Node != "down" {
		t.Fatalf("AND output feeds %s", downV.Node)
	}
	// No direct sync->down edge may bypass the junction.
	for _, e := range d.Edges() {
		from := d.Vertices[e.From]
		if from.IsSync && e.To == downV.Key {
			t.Fatalf("direct edge bypasses AND junction: %+v", e)
		}
	}
}

// TestOrJunctionMarked: two publishers on one topic mark the subscriber as
// an OR junction.
func TestOrJunctionMarked(t *testing.T) {
	w, b := tracedWorld(t, 4, 13)

	a := w.NewNode("pub_a", 5, 0)
	c := w.NewNode("pub_c", 5, 0)
	pa := a.CreatePublisher("/shared")
	pc := c.CreatePublisher("/shared")
	a.CreateTimer(50*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET: sim.Constant{Value: 100 * sim.Microsecond}, Action: func(*rclcpp.CallbackContext) { pa.Publish(1) }})
	c.CreateTimer(70*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET: sim.Constant{Value: 100 * sim.Microsecond}, Action: func(*rclcpp.CallbackContext) { pc.Publish(1) }})

	s := w.NewNode("subscriber", 5, 0)
	s.CreateSubscription("/shared", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})

	w.Run(1 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	d := core.Synthesize(tr)

	sub := d.VertexByLabelSubstring("subscriber|sub")
	if sub == nil {
		t.Fatalf("subscriber vertex missing: %v", d.VertexKeys())
	}
	if !sub.OrJunction {
		t.Fatal("subscriber not marked as OR junction")
	}
	if n := len(d.InEdges(sub.Key)); n != 2 {
		t.Fatalf("in-edges = %d, want 2", n)
	}
}

// TestMergeStrategiesEquivalent checks Fig. 2's two processing paths:
// merging traces then synthesizing equals synthesizing per trace and
// merging DAGs (same vertices, edges, and statistics).
func TestMergeStrategiesEquivalent(t *testing.T) {
	var segs []*trace.Trace
	runOnce := func(seed uint64) *trace.Trace {
		w, b := tracedWorld(t, 2, seed)
		n := w.NewNode("n", 5, 0)
		pub := n.CreatePublisher("/x")
		n.CreateTimer(20*sim.Millisecond, 0, rclcpp.SimpleBody{
			ET:     sim.Uniform{Min: sim.Millisecond, Max: 3 * sim.Millisecond},
			Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
		})
		m := w.NodeByName("n")
		_ = m
		s := w.NewNode("s", 5, 0)
		s.CreateSubscription("/x", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
		w.Run(500 * sim.Millisecond)
		tr, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	for seed := uint64(100); seed < 103; seed++ {
		segs = append(segs, runOnce(seed))
	}

	// Path (i): merge traces, then synthesize. Note: traces from separate
	// runs have distinct PIDs only by luck of identical worlds — here the
	// worlds are identical in structure so PIDs coincide; synthesizing a
	// cross-run merged trace is only meaningful per run, so path (i) is
	// applied within each run and the comparison is on equal inputs.
	var dagsA, dagsB []*core.DAG
	for _, s := range segs {
		dagsA = append(dagsA, core.Synthesize(s))
	}
	for _, s := range segs {
		dagsB = append(dagsB, core.BuildDAG(core.ExtractModel(s)))
	}
	a := core.MergeDAGs(dagsA...)
	bb := core.MergeDAGs(dagsB...)

	if len(a.Vertices) != len(bb.Vertices) {
		t.Fatalf("vertex counts differ: %d vs %d", len(a.Vertices), len(bb.Vertices))
	}
	ae, be := a.Edges(), bb.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for k, va := range a.Vertices {
		vb, ok := bb.Vertices[k]
		if !ok {
			t.Fatalf("vertex %s missing in path B", k)
		}
		if va.Stats.Count != vb.Stats.Count || va.Stats.Min != vb.Stats.Min || va.Stats.Max != vb.Stats.Max {
			t.Fatalf("stats differ for %s: %+v vs %+v", k, va.Stats, vb.Stats)
		}
	}
}

func TestDAGExports(t *testing.T) {
	w, b := tracedWorld(t, 2, 21)
	n := w.NewNode("n", 5, 0)
	pub := n.CreatePublisher("/x")
	n.CreateTimer(20*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
	})
	s := w.NewNode("s", 5, 0)
	s.CreateSubscription("/x", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
	w.Run(200 * sim.Millisecond)
	tr, _ := b.Drain()
	d := core.Synthesize(tr)

	dot := core.ToDOT(d, "test")
	for _, want := range []string{"digraph", "cluster_", "/x", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	var sb strings.Builder
	if err := core.WriteJSON(&sb, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"vertices\"") {
		t.Error("JSON missing vertices")
	}
	sum := core.Summary(d)
	if !strings.Contains(sum, "2 vertices, 1 edges") {
		t.Errorf("summary:\n%s", sum)
	}
}

// TestMultiModeDAG: traces merged per mode produce per-mode DAGs whose
// union covers both.
func TestMultiModeDAG(t *testing.T) {
	runMode := func(seed uint64, topic string) *trace.Trace {
		w, b := tracedWorld(t, 2, seed)
		n := w.NewNode("n", 5, 0)
		pub := n.CreatePublisher(topic)
		n.CreateTimer(20*sim.Millisecond, 0, rclcpp.SimpleBody{
			ET:     sim.Constant{Value: sim.Millisecond},
			Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
		})
		s := w.NewNode("s", 5, 0)
		s.CreateSubscription(topic, rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
		w.Run(200 * sim.Millisecond)
		tr, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	mm := core.NewMultiModeDAG()
	mm.AddTrace("city", runMode(1, "/city"))
	mm.AddTrace("highway", runMode(2, "/highway"))
	mm.AddTrace("city", runMode(3, "/city"))

	if got := mm.ModeNames(); len(got) != 2 {
		t.Fatalf("modes = %v", got)
	}
	city := mm.Modes["city"]
	cityTimer := city.VertexByLabelSubstring("timer")
	if cityTimer == nil || cityTimer.Stats.Count < 15 {
		t.Fatalf("city timer stats %+v", cityTimer)
	}
	union := mm.Union()
	if len(union.Vertices) != 4 {
		t.Fatalf("union vertices = %v", union.VertexKeys())
	}
}
