package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// Vertex is one task of the synthesized timing model: a callback, or a
// zero-execution-time AND junction inserted for message synchronization.
type Vertex struct {
	Key  string // canonical identity, stable across runs
	Node string
	PID  uint32
	Type CBType

	IsAnd      bool // AND junction (message synchronization output)
	IsSync     bool // callback participates in data synchronization
	OrJunction bool // >= 2 publishers feed one of its subscribed topics

	InTopics  []string // undecorated topic names, for display
	OutTopics []string

	Stats           ExecStats
	Instances       []Instance
	PeriodEstimates []sim.Duration // one per contributing trace (timers)
}

// Period returns the median of the per-run period estimates (timers).
func (v *Vertex) Period() sim.Duration {
	if len(v.PeriodEstimates) == 0 {
		return 0
	}
	cp := make([]sim.Duration, len(v.PeriodEstimates))
	copy(cp, v.PeriodEstimates)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

// Label returns a short human-readable vertex label.
func (v *Vertex) Label() string {
	if v.IsAnd {
		return v.Node + "/&"
	}
	in := strings.Join(v.InTopics, ",")
	if in == "" {
		in = fmt.Sprintf("T=%.0fms", v.Period().Milliseconds())
	}
	return fmt.Sprintf("%s/%s(%s)", v.Node, v.Type, in)
}

// Edge is a precedence relation labeled with the carrying topic.
type Edge struct {
	From, To string // vertex keys
	Topic    string // undecorated topic name
}

// DAG is the synthesized timing model. Alongside the edge set it maintains
// per-vertex in/out adjacency indexes (updated in AddEdge) and a sorted
// edge-list cache, so edge queries cost O(degree) and repeated Edges()
// calls don't re-sort.
type DAG struct {
	Vertices map[string]*Vertex
	edgeSet  map[Edge]struct{}

	inIdx  map[string][]Edge // To -> edges into it, insertion order
	outIdx map[string][]Edge // From -> edges out of it, insertion order
	sorted []Edge            // Edges() cache; nil when dirty
}

// NewDAG returns an empty model.
func NewDAG() *DAG {
	return &DAG{
		Vertices: make(map[string]*Vertex),
		edgeSet:  make(map[Edge]struct{}),
		inIdx:    make(map[string][]Edge),
		outIdx:   make(map[string][]Edge),
	}
}

// AddEdge inserts e if absent and updates the adjacency indexes.
func (d *DAG) AddEdge(e Edge) {
	if _, ok := d.edgeSet[e]; ok {
		return
	}
	d.edgeSet[e] = struct{}{}
	d.inIdx[e.To] = append(d.inIdx[e.To], e)
	d.outIdx[e.From] = append(d.outIdx[e.From], e)
	d.sorted = nil
}

// HasEdge reports whether e exists.
func (d *DAG) HasEdge(e Edge) bool {
	_, ok := d.edgeSet[e]
	return ok
}

func edgeLess(a, b Edge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Topic < b.Topic
}

// Edges returns the edges sorted by (From, To, Topic). The slice is cached
// until the next AddEdge and shared across calls; callers must not modify
// it.
func (d *DAG) Edges() []Edge {
	if d.sorted == nil {
		out := make([]Edge, 0, len(d.edgeSet))
		for e := range d.edgeSet {
			out = append(out, e)
		}
		sort.Slice(out, func(i, j int) bool { return edgeLess(out[i], out[j]) })
		d.sorted = out
	}
	return d.sorted
}

// VertexKeys returns the vertex keys sorted.
func (d *DAG) VertexKeys() []string {
	out := make([]string, 0, len(d.Vertices))
	for k := range d.Vertices {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// VertexByLabelSubstring returns the first vertex (key order) whose key
// contains s; a convenience for tests and examples. It scans the vertex map
// directly, tracking the smallest matching key, instead of sorting every
// key on each call.
func (d *DAG) VertexByLabelSubstring(s string) *Vertex {
	best := ""
	found := false
	for k := range d.Vertices {
		if strings.Contains(k, s) && (!found || k < best) {
			best, found = k, true
		}
	}
	if !found {
		return nil
	}
	return d.Vertices[best]
}

// InEdges returns the edges into key, sorted by (From, To, Topic).
func (d *DAG) InEdges(key string) []Edge {
	return sortedAdjacency(d.inIdx[key])
}

// OutEdges returns the edges out of key, sorted by (From, To, Topic).
func (d *DAG) OutEdges(key string) []Edge {
	return sortedAdjacency(d.outIdx[key])
}

func sortedAdjacency(list []Edge) []Edge {
	if len(list) == 0 {
		return nil
	}
	out := make([]Edge, len(list))
	copy(out, list)
	sort.Slice(out, func(i, j int) bool { return edgeLess(out[i], out[j]) })
	return out
}

// baseTopic strips the "#id" decoration Algorithm 1 appends for service
// disambiguation.
func baseTopic(t string) string {
	if i := strings.LastIndexByte(t, '#'); i >= 0 {
		return t[:i]
	}
	return t
}

// decorID extracts the decoration id, or 0.
func decorID(t string) uint64 {
	i := strings.LastIndexByte(t, '#')
	if i < 0 {
		return 0
	}
	v, err := strconv.ParseUint(t[i+1:], 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// canonicalKeys assigns run-stable identities to callbacks. Raw callback
// handles are simulated object addresses and change between runs, so the
// identity is built from the node name, the callback type, and the
// undecorated topics; service callbacks additionally carry their caller's
// canonical key (recursively), preserving the paper's per-caller split.
// Remaining collisions (e.g. two timers with identical outputs in one
// node) are disambiguated ordinally by first observed start time.
func canonicalKeys(cbs []*Callback) map[*Callback]string {
	base := make(map[*Callback]string, len(cbs))
	idToBase := make(map[uint64]string)
	for _, cb := range cbs {
		var b string
		switch cb.Type {
		case CBTimer:
			outs := make([]string, 0, len(cb.OutTopics))
			for _, t := range cb.OutTopics {
				outs = append(outs, baseTopic(t))
			}
			sort.Strings(outs)
			b = cb.Node + "|timer|" + strings.Join(outs, ",")
		case CBSubscriber:
			b = cb.Node + "|sub|" + baseTopic(cb.InTopic)
			if cb.IsSync {
				b += "|sync"
			}
		case CBService:
			b = cb.Node + "|service|" + baseTopic(cb.InTopic)
		case CBClient:
			b = cb.Node + "|client|" + baseTopic(cb.InTopic)
		}
		base[cb] = b
		if _, dup := idToBase[cb.ID]; !dup {
			idToBase[cb.ID] = b
		}
	}

	full := make(map[*Callback]string, len(cbs))
	for _, cb := range cbs {
		k := base[cb]
		if cb.Type == CBService {
			caller := "caller:unknown"
			if id := decorID(cb.InTopic); id != 0 {
				if cb2, ok := idToBase[id]; ok {
					caller = "caller:" + cb2
				}
			}
			k += "@" + caller
		}
		full[cb] = k
	}

	// Ordinal disambiguation of residual collisions.
	byKey := make(map[string][]*Callback)
	for _, cb := range cbs {
		byKey[full[cb]] = append(byKey[full[cb]], cb)
	}
	for _, group := range byKey {
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool {
			return firstStart(group[i]) < firstStart(group[j])
		})
		for i, cb := range group {
			full[cb] = fmt.Sprintf("%s|%d", full[cb], i)
		}
	}
	return full
}

func firstStart(cb *Callback) sim.Time {
	if len(cb.Instances) == 0 {
		return 0
	}
	return cb.Instances[0].Start
}

// BuildDAG applies the DAG-synthesis rules of Sec. IV to a model:
//
//   - every CBlist entry becomes a vertex (so a service with n callers
//     contributes n vertices);
//   - an edge runs from cb' to cb when a published topic of cb' matches
//     the subscribed topic of cb (decorated names make service edges
//     caller- and client-specific);
//   - the outputs of data-synchronization callbacks are routed through a
//     zero-execution-time AND-junction vertex per synchronization group;
//   - a vertex whose subscribed topic is fed by more than one publisher is
//     marked as an OR junction.
func BuildDAG(m *Model) *DAG {
	return buildDAG(m, nil)
}

// buildDAG is BuildDAG with the timer-period estimator injectable:
// periodOf (nil selects Callback.EstimatePeriod) lets the incremental
// snapshot engine substitute its O(1) streaming median for the batch
// sort, without which every snapshot would re-sort every timer's full
// inter-start gap history.
func buildDAG(m *Model, periodOf func(*Callback) sim.Duration) *DAG {
	d := NewDAG()
	keys := canonicalKeys(m.Callbacks)

	// Vertices. Canonical keys are unique per callback within one model
	// (ordinal disambiguation splits every residual collision group), so
	// in the common case each vertex has exactly one contributor and can
	// share its samples and instances — full-capacity-clamped, so later
	// appends by a consumer (MergeDAGs) reallocate instead of writing
	// into the callback's backing arrays. A second contributor to the
	// same key falls back to copy-then-merge.
	sharedV := make(map[*Vertex]bool)
	for _, cb := range m.Callbacks {
		key := keys[cb]
		v, ok := d.Vertices[key]
		if !ok {
			v = &Vertex{Key: key, Node: cb.Node, PID: cb.PID, Type: cb.Type, IsSync: cb.IsSync}
			v.Stats = cb.Stats
			v.Stats.Samples = clampDurations(cb.Stats.Samples)
			v.Instances = clampInstances(cb.Instances)
			sharedV[v] = true
			d.Vertices[key] = v
		} else {
			if sharedV[v] {
				v.Stats.Samples = append([]sim.Duration(nil), v.Stats.Samples...)
				v.Instances = append([]Instance(nil), v.Instances...)
				sharedV[v] = false
			}
			v.Stats.Merge(cb.Stats)
			v.Instances = append(v.Instances, cb.Instances...)
		}
		if in := baseTopic(cb.InTopic); in != "" {
			v.InTopics = mergeSorted(v.InTopics, in)
		}
		for _, t := range cb.OutTopics {
			v.OutTopics = mergeSorted(v.OutTopics, baseTopic(t))
		}
		if cb.Type == CBTimer {
			var p sim.Duration
			if periodOf != nil {
				p = periodOf(cb)
			} else {
				p = cb.EstimatePeriod()
			}
			if p > 0 {
				v.PeriodEstimates = append(v.PeriodEstimates, p)
			}
		}
	}

	// Synchronization groups: the sync-marked callbacks of one node form
	// one group MSα whose outputs route through an AND junction.
	syncGroup := make(map[string][]*Callback) // node -> members
	for _, cb := range m.Callbacks {
		if cb.IsSync {
			syncGroup[cb.Node] = append(syncGroup[cb.Node], cb)
		}
	}
	andKey := func(node string) string { return node + "|&" }
	for node, members := range syncGroup {
		v := &Vertex{Key: andKey(node), Node: node, IsAnd: true}
		for _, cb := range members {
			for _, t := range cb.OutTopics {
				v.OutTopics = mergeSorted(v.OutTopics, baseTopic(t))
			}
			v.InTopics = mergeSorted(v.InTopics, baseTopic(cb.InTopic))
		}
		d.Vertices[v.Key] = v
	}

	// Subscriptions by raw (decorated) in-topic.
	byIn := make(map[string][]*Callback)
	for _, cb := range m.Callbacks {
		if cb.InTopic != "" {
			byIn[cb.InTopic] = append(byIn[cb.InTopic], cb)
		}
	}

	// Edges.
	for _, cb := range m.Callbacks {
		if cb.IsSync {
			// Member -> AND junction; outputs leave from the junction.
			d.AddEdge(Edge{From: keys[cb], To: andKey(cb.Node), Topic: baseTopic(cb.InTopic)})
			continue
		}
		for _, out := range cb.OutTopics {
			for _, sub := range byIn[out] {
				d.AddEdge(Edge{From: keys[cb], To: keys[sub], Topic: baseTopic(out)})
			}
		}
	}
	for node, members := range syncGroup {
		seen := map[string]bool{}
		for _, cb := range members {
			for _, out := range cb.OutTopics {
				if seen[out] {
					continue
				}
				seen[out] = true
				for _, sub := range byIn[out] {
					d.AddEdge(Edge{From: andKey(node), To: keys[sub], Topic: baseTopic(out)})
				}
			}
		}
	}

	// OR junctions: multiple publishers on one subscribed topic.
	type toTopic struct {
		to, topic string
	}
	fanIn := make(map[toTopic]int)
	for e := range d.edgeSet {
		fanIn[toTopic{e.To, e.Topic}]++
	}
	for tt, n := range fanIn {
		if n >= 2 {
			d.Vertices[tt.to].OrJunction = true
		}
	}
	return d
}

// clampDurations full-capacity-clamps a duration slice so appends by the
// receiver reallocate instead of aliasing the source's backing array.
func clampDurations(s []sim.Duration) []sim.Duration { return s[:len(s):len(s)] }

// clampInstances is clampDurations for instance slices.
func clampInstances(s []Instance) []Instance { return s[:len(s):len(s)] }

func mergeSorted(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	list = append(list, s)
	sort.Strings(list)
	return list
}

// Synthesize runs the full pipeline — Algorithm 1 over every node, then
// DAG construction — on one merged trace.
func Synthesize(tr *trace.Trace) *DAG {
	return BuildDAG(ExtractModel(tr))
}

// MergeDAGs merges per-trace DAGs (the approach used for the paper's
// experiments): vertices and edges are unioned by canonical identity, and
// per-callback execution-time statistics combine across all inputs.
func MergeDAGs(dags ...*DAG) *DAG {
	out := NewDAG()
	for _, d := range dags {
		if d == nil {
			continue
		}
		for key, v := range d.Vertices {
			dst, ok := out.Vertices[key]
			if !ok {
				dst = &Vertex{Key: key, Node: v.Node, PID: v.PID, Type: v.Type,
					IsAnd: v.IsAnd, IsSync: v.IsSync}
				out.Vertices[key] = dst
			}
			dst.Stats.Merge(v.Stats)
			dst.Instances = append(dst.Instances, v.Instances...)
			dst.PeriodEstimates = append(dst.PeriodEstimates, v.PeriodEstimates...)
			dst.OrJunction = dst.OrJunction || v.OrJunction
			dst.IsSync = dst.IsSync || v.IsSync
			for _, t := range v.InTopics {
				dst.InTopics = mergeSorted(dst.InTopics, t)
			}
			for _, t := range v.OutTopics {
				dst.OutTopics = mergeSorted(dst.OutTopics, t)
			}
		}
		for e := range d.edgeSet {
			out.AddEdge(e)
		}
	}
	return out
}

// MultiModeDAG holds one DAG per operating mode (Fig. 2's per-scenario
// merge, e.g. city vs highway driving).
type MultiModeDAG struct {
	Modes map[string]*DAG
}

// NewMultiModeDAG returns an empty multi-mode model.
func NewMultiModeDAG() *MultiModeDAG { return &MultiModeDAG{Modes: make(map[string]*DAG)} }

// AddTrace synthesizes tr and merges it into the given mode.
func (mm *MultiModeDAG) AddTrace(mode string, tr *trace.Trace) {
	d := Synthesize(tr)
	if existing, ok := mm.Modes[mode]; ok {
		mm.Modes[mode] = MergeDAGs(existing, d)
	} else {
		mm.Modes[mode] = d
	}
}

// ModeNames returns the modes sorted.
func (mm *MultiModeDAG) ModeNames() []string {
	out := make([]string, 0, len(mm.Modes))
	for k := range mm.Modes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Union merges all modes into a single DAG.
func (mm *MultiModeDAG) Union() *DAG {
	var all []*DAG
	for _, name := range mm.ModeNames() {
		all = append(all, mm.Modes[name])
	}
	return MergeDAGs(all...)
}

// BuildDAGNaive builds the model WITHOUT the paper's service modeling:
// topic decorations are stripped, so a service invoked by n different
// callers collapses into a single vertex with n incoming and n outgoing
// edges — producing the n x n spurious chains (e.g. SC3 -> SV3 -> CL4)
// that Sec. I identifies as a wrong interpretation. It exists purely as
// the ablation baseline for that claim.
func BuildDAGNaive(m *Model) *DAG {
	byID := make(map[uint64]*Callback)
	var cbs []*Callback
	for _, cb := range m.Callbacks {
		outs := make([]string, 0, len(cb.OutTopics))
		for _, t := range cb.OutTopics {
			outs = mergeSorted(outs, baseTopic(t))
		}
		c := &Callback{
			PID: cb.PID, Node: cb.Node, Type: cb.Type, ID: cb.ID,
			InTopic: baseTopic(cb.InTopic), OutTopics: outs, IsSync: cb.IsSync,
		}
		c.Stats.Merge(cb.Stats)
		c.Instances = append(c.Instances, cb.Instances...)
		if existing, ok := byID[cb.ID]; ok && existing.Type == c.Type {
			existing.Stats.Merge(cb.Stats)
			existing.Instances = append(existing.Instances, cb.Instances...)
			for _, t := range outs {
				existing.addOutTopic(t)
			}
			continue
		}
		byID[cb.ID] = c
		cbs = append(cbs, c)
	}
	return BuildDAG(&Model{Callbacks: cbs, NodeOf: m.NodeOf})
}
