package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// schedulerWorld boots a traced AVP world on a bounded bundle.
func schedulerWorld(t *testing.T, capacity int) (*rclcpp.World, *Bundle) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 11})
	b, err := NewBundleCapacity(w.Runtime(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	apps.BuildAVP(w, apps.AVPConfig{})
	return w, b
}

// TestDrainSchedulerTightensUnderLoad checks the planner's core motion:
// a busy window plans a shorter period than an idle one, clamped to the
// policy bounds.
func TestDrainSchedulerTightensUnderLoad(t *testing.T) {
	w, b := schedulerWorld(t, 64)
	pol := DrainPolicy{Capacity: 64, TargetFill: 0.5,
		Min: 10 * sim.Millisecond, Max: 2 * sim.Second}
	s := NewDrainScheduler(b, pol)
	if s.Interval() != pol.Min {
		t.Fatalf("initial interval %v, want calibration at Min %v", s.Interval(), pol.Min)
	}

	// Busy window: run long enough that rings accumulate real backlog.
	w.Run(200 * sim.Millisecond)
	obs := s.Observe(200 * sim.Millisecond)
	if obs.MaxPending == 0 && obs.LostDelta == 0 {
		t.Fatal("busy window observed no traffic; workload broken")
	}
	busy := obs.Next
	if busy < pol.Min || busy > pol.Max {
		t.Fatalf("planned interval %v outside [%v, %v]", busy, pol.Min, pol.Max)
	}
	if busy == pol.Max {
		t.Fatalf("busy window planned Max (%v); no adaptation happened", busy)
	}
	var kc trace.KindCounter
	if err := b.StreamTo(&kc); err != nil {
		t.Fatal(err)
	}

	// Idle window: no simulation progress, nothing arrives; the planner
	// backs off (doubling toward Max), never below the busy plan.
	idle := s.Observe(busy)
	if idle.Next <= busy {
		t.Fatalf("idle window planned %v, want backoff above %v", idle.Next, busy)
	}
}

// TestDrainSchedulerUnboundedStaysAtMax checks that unbounded rings
// disable adaptation: there is no capacity to protect, so the scheduler
// always plans the maximum period.
func TestDrainSchedulerUnboundedStaysAtMax(t *testing.T) {
	w, b := schedulerWorld(t, 0)
	pol := DrainPolicy{Capacity: 0, Min: 10 * sim.Millisecond, Max: sim.Second}
	s := NewDrainScheduler(b, pol)
	if s.Interval() != pol.Max {
		t.Fatalf("unbounded initial interval %v, want Max %v", s.Interval(), pol.Max)
	}
	w.Run(500 * sim.Millisecond)
	if obs := s.Observe(500 * sim.Millisecond); obs.Next != pol.Max {
		t.Fatalf("unbounded planned %v, want Max %v", obs.Next, pol.Max)
	}
}

// TestDrainSchedulerZeroLossAtLossyPoint is the end-to-end property the
// adaptive policy exists for: at a bounded-ring operating point where a
// fixed period demonstrably overruns, the scheduler-driven loop loses
// nothing and drains the identical event stream.
func TestDrainSchedulerZeroLossAtLossyPoint(t *testing.T) {
	const capacity = 256
	duration := 4 * sim.Second
	fixedPeriod := duration / 8

	// The lossy operating point needs the full SYN+AVP workload over
	// enough CPUs that one ring runs hot (the capacity sweep's setup).
	lossyWorld := func() (*rclcpp.World, *Bundle) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 8, Seed: 9})
		b, err := NewBundleCapacity(w.Runtime(), capacity)
		if err != nil {
			t.Fatal(err)
		}
		BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartRT(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartKernel(true); err != nil {
			t.Fatal(err)
		}
		apps.BuildSYN(w, apps.SYNConfig{})
		apps.BuildAVP(w, apps.AVPConfig{})
		b.StopInit()
		return w, b
	}

	run := func(adaptive bool) (events int, lost uint64) {
		w, b := lossyWorld()
		var kc trace.KindCounter
		if adaptive {
			s := NewDrainScheduler(b, DrainPolicy{Capacity: capacity, TargetFill: 0.5,
				Min: duration / 128, Max: fixedPeriod})
			var elapsed sim.Duration
			for elapsed < duration {
				step := s.Interval()
				if rest := duration - elapsed; step > rest {
					step = rest
				}
				w.Run(step)
				elapsed += step
				s.Observe(step)
				if err := b.StreamTo(&kc); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for elapsed := sim.Duration(0); elapsed < duration; elapsed += fixedPeriod {
				w.Run(fixedPeriod)
				if err := b.StreamTo(&kc); err != nil {
					t.Fatal(err)
				}
			}
		}
		return kc.Total(), b.Lost()
	}

	fixedEvents, fixedLost := run(false)
	adEvents, adLost := run(true)
	if fixedLost == 0 {
		t.Skip("fixed period lost nothing at this scale; operating point not lossy")
	}
	if adLost != 0 {
		t.Fatalf("adaptive drain lost %d records", adLost)
	}
	if adEvents != fixedEvents+int(fixedLost) {
		t.Fatalf("adaptive drained %d events, want %d", adEvents, fixedEvents+int(fixedLost))
	}
}

// tracedWorld boots SYN+AVP with all three tracers live, so every
// buffer owns populated rings (the init phase registers the PIDs the
// kernel tracer's filtering needs).
func tracedWorld(t *testing.T, cpus, capacity int, seed uint64) (*rclcpp.World, *Bundle) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := NewBundleCapacity(w.Runtime(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	apps.BuildSYN(w, apps.SYNConfig{})
	apps.BuildAVP(w, apps.AVPConfig{})
	b.StopInit()
	return w, b
}

// TestStreamDueToSelectsRings checks the selective drain's contract:
// only rings the predicate admits are drained; the rest keep their
// backlog and a later full drain recovers it.
func TestStreamDueToSelectsRings(t *testing.T) {
	w, b := tracedWorld(t, 4, 0, 11)
	w.Run(200 * sim.Millisecond)

	pbs := b.perfBuffers()
	var kc trace.KindCounter
	// Drain only the kernel tracer's rings (index 2, the hot ones).
	if err := b.StreamDueTo(&kc, func(tracer, cpu int) bool { return tracer == 2 }); err != nil {
		t.Fatal(err)
	}
	if kc.Total() == 0 {
		t.Fatal("selective drain of the kernel rings yielded nothing")
	}
	if p := pbs[2].Pending(); p != 0 {
		t.Fatalf("kernel buffer still has %d pending after selective drain", p)
	}
	rest := pbs[0].Pending() + pbs[1].Pending()
	if rest == 0 {
		t.Fatal("non-selected rings were drained (or workload emitted nothing on them)")
	}
	before := kc.Total()
	if err := b.StreamTo(&kc); err != nil {
		t.Fatal(err)
	}
	if got := kc.Total() - before; got != rest {
		t.Fatalf("full drain recovered %d events, want the %d left pending", got, rest)
	}
}

// TestAdvancePerRingStaggersDeadlines checks that per-ring planning
// actually differentiates rings: after calibration, cold rings back off
// past hot ones, so some wakeups drain a strict subset of the rings.
func TestAdvancePerRingStaggersDeadlines(t *testing.T) {
	w, b := tracedWorld(t, 4, 256, 11)
	pol := DrainPolicy{Capacity: 256, TargetFill: 0.5,
		Min: 10 * sim.Millisecond, Max: sim.Second}
	s := NewDrainScheduler(b, pol)

	var kc trace.KindCounter
	sawSubset := false
	for i := 0; i < 40; i++ {
		step := s.Interval()
		w.Run(step)
		due := s.AdvancePerRing(step)
		if n := due.Count(); n > 0 && n < b.NumRings() {
			sawSubset = true
		}
		if err := b.StreamDueTo(&kc, due.Has); err != nil {
			t.Fatal(err)
		}
	}
	if !sawSubset {
		t.Fatal("every wakeup drained all rings; deadlines never staggered")
	}
	if s.RingDrains() >= s.Drains()*b.NumRings() {
		t.Fatalf("ring drains %d not below all-rings cost %d",
			s.RingDrains(), s.Drains()*b.NumRings())
	}
	if kc.Total() == 0 {
		t.Fatal("no events drained")
	}
}

// TestPerRingDeadlinesZeroLossAtLossyPoint extends the adaptive
// zero-loss property to per-ring deadlines: at the same lossy operating
// point, draining only due rings must still lose nothing and recover
// the identical stream, while doing fewer ring drains than draining
// every ring on every wakeup.
func TestPerRingDeadlinesZeroLossAtLossyPoint(t *testing.T) {
	const capacity = 256
	duration := 4 * sim.Second
	fixedPeriod := duration / 8

	pol := DrainPolicy{Capacity: capacity, TargetFill: 0.5,
		Min: duration / 128, Max: fixedPeriod}

	// Fixed-period reference, to know the full stream size.
	wf, bf := tracedWorld(t, 8, capacity, 9)
	var fixed trace.KindCounter
	for elapsed := sim.Duration(0); elapsed < duration; elapsed += fixedPeriod {
		wf.Run(fixedPeriod)
		if err := bf.StreamTo(&fixed); err != nil {
			t.Fatal(err)
		}
	}
	if bf.Lost() == 0 {
		t.Skip("fixed period lost nothing at this scale; operating point not lossy")
	}
	want := fixed.Total() + int(bf.Lost())

	w, b := tracedWorld(t, 8, capacity, 9)
	s := NewDrainScheduler(b, pol)
	var kc trace.KindCounter
	var elapsed sim.Duration
	for elapsed < duration {
		step := s.Interval()
		if rest := duration - elapsed; step > rest {
			step = rest
		}
		w.Run(step)
		elapsed += step
		due := s.AdvancePerRing(step)
		if err := b.StreamDueTo(&kc, due.Has); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.StreamTo(&kc); err != nil {
		t.Fatal(err)
	}
	if lost := b.Lost(); lost != 0 {
		t.Fatalf("per-ring drain lost %d records", lost)
	}
	if kc.Total() != want {
		t.Fatalf("per-ring drained %d events, want %d", kc.Total(), want)
	}
	if allRings := s.Drains() * b.NumRings(); s.RingDrains() >= allRings {
		t.Fatalf("per-ring did %d ring drains, all-rings equivalent %d; no savings",
			s.RingDrains(), allRings)
	}
}

// TestMaxRingPending checks the gauge the scheduler plans from reports
// the worst single ring, not a sum.
func TestMaxRingPending(t *testing.T) {
	w, b := schedulerWorld(t, 0)
	w.Run(100 * sim.Millisecond)
	pending, _ := b.MaxRingPending()
	if pending == 0 {
		t.Fatal("no pending records after a traced window")
	}
	total := 0
	for _, pb := range b.perfBuffers() {
		total += pb.Pending()
	}
	if pending > total {
		t.Fatalf("worst ring pending %d exceeds total %d", pending, total)
	}
}
