package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// TestRedirectBaselineComparison reproduces the Sec. II-B argument: the
// LD_PRELOAD-redirection baseline captures the same event stream but at a
// substantially higher per-event cost than the eBPF probes.
func TestRedirectBaselineComparison(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 8})
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	redirect := NewRedirectTracer(w.Runtime())
	redirect.Start()

	n := w.NewNode("n", 5, 0)
	pub := n.CreatePublisher("/x")
	n.CreateTimer(10*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
	})
	s := w.NewNode("s", 5, 0)
	s.CreateSubscription("/x", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
	w.Run(2 * sim.Second)

	ebpfTrace, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}

	// Same observable stream: both see every timer start, take and write.
	count := func(evs []trace.Event, k trace.Kind) int {
		n := 0
		for _, e := range evs {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	for _, k := range []trace.Kind{trace.KindTimerCBStart, trace.KindTakeInt, trace.KindDDSWrite} {
		if got, want := count(redirect.Events(), k), count(ebpfTrace.Events, k); got != want {
			t.Errorf("%v: redirect saw %d, eBPF saw %d", k, got, want)
		}
	}
	// The redirect tracer reads the same topic names (it is the shim).
	foundTopic := false
	for _, e := range redirect.Events() {
		if e.Kind == trace.KindTakeInt && e.Topic == "/x" {
			foundTopic = true
		}
	}
	if !foundTopic {
		t.Error("redirect tracer did not capture topic names")
	}

	// ... but at a much higher per-event cost.
	ebpfCost := w.Runtime().CostNs()
	redirCost := redirect.CostNs()
	if redirCost <= ebpfCost {
		t.Fatalf("redirection cost %.0f ns not above eBPF cost %.0f ns", redirCost, ebpfCost)
	}
	perEventRedirect := redirCost / float64(len(redirect.Events()))
	if perEventRedirect < 1000 {
		t.Errorf("per-event redirect cost %.0f ns implausibly low", perEventRedirect)
	}

	redirect.Stop()
	before := len(redirect.Events())
	w.Run(100 * sim.Millisecond)
	if len(redirect.Events()) != before {
		t.Error("events captured after Stop")
	}
}
