package tracers

import (
	"github.com/tracesynth/rostracer/internal/sim"
)

// Adaptive drain scheduling: the backpressure policy for bounded rings.
//
// A fixed-period drain loop picks its period blind: too long and a hot
// CPU's ring overruns (records are lost and counted against that ring),
// too short and the poller burns wakeups draining nearly-empty rings.
// The capacity-planning sweep (harness.CapacityPlanExperiment) maps that
// trade-off offline; DrainScheduler closes the loop online, using the
// same observable the sweep reports — per-ring pending high-water marks
// and lost counts — to plan each next period so the worst ring is
// expected to reach TargetFill of its capacity, no further.

// DrainPolicy parameterizes the scheduler.
type DrainPolicy struct {
	// Capacity is the per-ring record bound the bundle was built with
	// (NewBundleCapacity); 0 means unbounded, which disables adaptation
	// (the scheduler then always plans Max).
	Capacity int
	// TargetFill is the fraction of Capacity the worst ring should reach
	// by the next drain; the 1/TargetFill headroom absorbs rate growth
	// between observations. Defaults to 0.5.
	TargetFill float64
	// Min and Max clamp the planned interval. The first interval is Min:
	// a short calibration period that observes the actual fill rate
	// before the scheduler trusts itself to back off.
	Min, Max sim.Duration
}

// DrainObservation reports one observation window: the gauges read
// before the drain, and the interval planned from them.
type DrainObservation struct {
	// MaxPending is the largest single-ring undrained backlog across the
	// three tracers — the high-water mark the next period is planned
	// from.
	MaxPending int
	// MaxPendingCPU is the CPU owning that worst ring.
	MaxPendingCPU int
	// LostDelta counts records lost to ring overruns since the previous
	// observation (all rings).
	LostDelta uint64
	// Next is the planned next drain interval.
	Next sim.Duration
}

// DrainScheduler plans the drain cadence of one Bundle from per-ring
// pending/lost gauges. Call Observe after advancing the simulation by
// the current Interval and before draining (the drain clears the
// pending gauges the scheduler reads).
type DrainScheduler struct {
	b        *Bundle
	pol      DrainPolicy
	interval sim.Duration
	lastLost [3][]uint64 // per-tracer, per-CPU lost snapshots
	drains   int
}

// NewDrainScheduler plans drains for b under pol. The initial interval
// is pol.Min for bounded rings (calibration) and pol.Max for unbounded
// ones.
func NewDrainScheduler(b *Bundle, pol DrainPolicy) *DrainScheduler {
	if pol.TargetFill <= 0 || pol.TargetFill > 1 {
		pol.TargetFill = 0.5
	}
	if pol.Min <= 0 {
		pol.Min = 1
	}
	if pol.Max < pol.Min {
		pol.Max = pol.Min
	}
	s := &DrainScheduler{b: b, pol: pol, interval: pol.Min}
	if pol.Capacity <= 0 {
		s.interval = pol.Max
	}
	return s
}

// Interval returns the current planned drain interval.
func (s *DrainScheduler) Interval() sim.Duration { return s.interval }

// Drains returns how many observation windows have completed.
func (s *DrainScheduler) Drains() int { return s.drains }

// Observe reads the per-ring gauges accumulated over the elapsed window
// and plans the next interval: the worst ring's demand (pending
// high-water plus records it lost) defines the observed fill rate, and
// the next period is sized so that rate fills TargetFill of the
// capacity. It must be called after the simulation advanced and before
// the rings are drained.
func (s *DrainScheduler) Observe(elapsed sim.Duration) DrainObservation {
	obs := DrainObservation{Next: s.pol.Max}
	worstDemand := 0
	for bi, pb := range s.b.perfBuffers() {
		rings := pb.NumRings()
		for len(s.lastLost[bi]) < rings {
			s.lastLost[bi] = append(s.lastLost[bi], 0)
		}
		for cpu := 0; cpu < rings; cpu++ {
			lost := pb.LostOnCPU(cpu)
			delta := lost - s.lastLost[bi][cpu]
			s.lastLost[bi][cpu] = lost
			obs.LostDelta += delta

			pend := pb.PendingOnCPU(cpu)
			if pend > obs.MaxPending {
				obs.MaxPending, obs.MaxPendingCPU = pend, cpu
			}
			// Demand is what the ring would have held had it been big
			// enough: the records still pending plus the ones it dropped.
			if demand := pend + int(delta); demand > worstDemand {
				worstDemand = demand
			}
		}
	}
	s.drains++

	if s.pol.Capacity > 0 && worstDemand > 0 && elapsed > 0 {
		// rate = worstDemand / elapsed; next = target records / rate.
		target := s.pol.TargetFill * float64(s.pol.Capacity)
		next := sim.Duration(target * float64(elapsed) / float64(worstDemand))
		if next < s.pol.Min {
			next = s.pol.Min
		}
		if next > s.pol.Max {
			next = s.pol.Max
		}
		obs.Next = next
	} else if s.pol.Capacity > 0 {
		// Nothing arrived: back off one planning step at a time rather
		// than jumping straight to Max, in case the workload is bursty.
		next := s.interval * 2
		if next > s.pol.Max {
			next = s.pol.Max
		}
		obs.Next = next
	}
	s.interval = obs.Next
	return obs
}

// MaxRingPending reports the largest undrained record count on any
// single per-CPU ring across the three tracers — the gauge a drain
// scheduler plans from (capacity bounds apply per ring, not per
// buffer).
func (b *Bundle) MaxRingPending() (pending, cpu int) {
	for _, pb := range b.perfBuffers() {
		for c := 0; c < pb.NumRings(); c++ {
			if p := pb.PendingOnCPU(c); p > pending {
				pending, cpu = p, c
			}
		}
	}
	return pending, cpu
}
