package tracers

import (
	"github.com/tracesynth/rostracer/internal/sim"
)

// Adaptive drain scheduling: the backpressure policy for bounded rings.
//
// A fixed-period drain loop picks its period blind: too long and a hot
// CPU's ring overruns (records are lost and counted against that ring),
// too short and the poller burns wakeups draining nearly-empty rings.
// The capacity-planning sweep (harness.CapacityPlanExperiment) maps that
// trade-off offline; DrainScheduler closes the loop online, using the
// same observable the sweep reports — per-ring pending high-water marks
// and lost counts — to plan each next period so the worst ring is
// expected to reach TargetFill of its capacity, no further.

// DrainPolicy parameterizes the scheduler.
type DrainPolicy struct {
	// Capacity is the per-ring record bound the bundle was built with
	// (NewBundleCapacity); 0 means unbounded, which disables adaptation
	// (the scheduler then always plans Max).
	Capacity int
	// TargetFill is the fraction of Capacity the worst ring should reach
	// by the next drain; the 1/TargetFill headroom absorbs rate growth
	// between observations. Defaults to 0.5.
	TargetFill float64
	// Min and Max clamp the planned interval. The first interval is Min:
	// a short calibration period that observes the actual fill rate
	// before the scheduler trusts itself to back off.
	Min, Max sim.Duration
}

// DrainObservation reports one observation window: the gauges read
// before the drain, and the interval planned from them.
type DrainObservation struct {
	// MaxPending is the largest single-ring undrained backlog across the
	// three tracers — the high-water mark the next period is planned
	// from.
	MaxPending int
	// MaxPendingCPU is the CPU owning that worst ring.
	MaxPendingCPU int
	// LostDelta counts records lost to ring overruns since the previous
	// observation (all rings).
	LostDelta uint64
	// Next is the planned next drain interval.
	Next sim.Duration
}

// DrainScheduler plans the drain cadence of one Bundle from per-ring
// pending/lost gauges. Call Observe after advancing the simulation by
// the current Interval and before draining (the drain clears the
// pending gauges the scheduler reads).
//
// Observe plans one global cadence from the worst ring, so every wakeup
// drains every ring. AdvancePerRing instead gives each ring its own
// deadline planned from its own fill rate: a wakeup drains only the
// rings whose deadline arrived (Bundle.StreamDueTo), so cold rings —
// the init tracer after startup, RT rings on idle CPUs — stop paying
// cursor setup at the hot rings' cadence. The two modes share the
// policy but keep separate state; use one or the other per scheduler.
type DrainScheduler struct {
	b        *Bundle
	pol      DrainPolicy
	interval sim.Duration
	lastLost [3][]uint64 // per-tracer, per-CPU lost snapshots
	drains   int

	// Per-ring deadline state (AdvancePerRing mode).
	now        sim.Duration      // accumulated elapsed simulation time
	deadline   [3][]sim.Duration // absolute per-ring next-drain deadlines
	ringIval   [3][]sim.Duration // per-ring last planned interval (backoff base)
	lastDrain  [3][]sim.Duration // when each ring was last drained (window start)
	due        RingSet           // scratch, reused across calls
	ringDrains int               // total ring drains selected so far
}

// RingSet marks which rings of a bundle are due for draining. Its Has
// method has the signature Bundle.StreamDueTo expects.
type RingSet struct {
	due [3][]bool
	n   int
}

// Has reports whether the given tracer's per-CPU ring is in the set.
func (r *RingSet) Has(tracer, cpu int) bool {
	if tracer < 0 || tracer >= len(r.due) || cpu < 0 || cpu >= len(r.due[tracer]) {
		return false
	}
	return r.due[tracer][cpu]
}

// Count returns how many rings are in the set.
func (r *RingSet) Count() int { return r.n }

// NewDrainScheduler plans drains for b under pol. The initial interval
// is pol.Min for bounded rings (calibration) and pol.Max for unbounded
// ones.
func NewDrainScheduler(b *Bundle, pol DrainPolicy) *DrainScheduler {
	if pol.TargetFill <= 0 || pol.TargetFill > 1 {
		pol.TargetFill = 0.5
	}
	if pol.Min <= 0 {
		pol.Min = 1
	}
	if pol.Max < pol.Min {
		pol.Max = pol.Min
	}
	s := &DrainScheduler{b: b, pol: pol, interval: pol.Min}
	if pol.Capacity <= 0 {
		s.interval = pol.Max
	}
	return s
}

// Interval returns the current planned drain interval.
func (s *DrainScheduler) Interval() sim.Duration { return s.interval }

// Drains returns how many observation windows have completed.
func (s *DrainScheduler) Drains() int { return s.drains }

// Observe reads the per-ring gauges accumulated over the elapsed window
// and plans the next interval: the worst ring's demand (pending
// high-water plus records it lost) defines the observed fill rate, and
// the next period is sized so that rate fills TargetFill of the
// capacity. It must be called after the simulation advanced and before
// the rings are drained.
func (s *DrainScheduler) Observe(elapsed sim.Duration) DrainObservation {
	obs := DrainObservation{Next: s.pol.Max}
	worstDemand := 0
	for bi, pb := range s.b.perfBuffers() {
		rings := pb.NumRings()
		for len(s.lastLost[bi]) < rings {
			s.lastLost[bi] = append(s.lastLost[bi], 0)
		}
		for cpu := 0; cpu < rings; cpu++ {
			lost := pb.LostOnCPU(cpu)
			delta := lost - s.lastLost[bi][cpu]
			s.lastLost[bi][cpu] = lost
			obs.LostDelta += delta

			pend := pb.PendingOnCPU(cpu)
			if pend > obs.MaxPending {
				obs.MaxPending, obs.MaxPendingCPU = pend, cpu
			}
			// Demand is what the ring would have held had it been big
			// enough: the records still pending plus the ones it dropped.
			if demand := pend + int(delta); demand > worstDemand {
				worstDemand = demand
			}
		}
	}
	s.drains++

	if s.pol.Capacity > 0 && worstDemand > 0 && elapsed > 0 {
		// rate = worstDemand / elapsed; next = target records / rate.
		target := s.pol.TargetFill * float64(s.pol.Capacity)
		next := sim.Duration(target * float64(elapsed) / float64(worstDemand))
		if next < s.pol.Min {
			next = s.pol.Min
		}
		if next > s.pol.Max {
			next = s.pol.Max
		}
		obs.Next = next
	} else if s.pol.Capacity > 0 {
		// Nothing arrived: back off one planning step at a time rather
		// than jumping straight to Max, in case the workload is bursty.
		next := s.interval * 2
		if next > s.pol.Max {
			next = s.pol.Max
		}
		obs.Next = next
	}
	s.interval = obs.Next
	return obs
}

// RingDrains returns how many ring drains AdvancePerRing has selected
// in total — the cost metric per-ring deadlines exist to shrink (the
// all-rings equivalent is Drains times the ring count).
func (s *DrainScheduler) RingDrains() int { return s.ringDrains }

// AdvancePerRing advances the scheduler clock by the elapsed window and
// returns the rings whose deadline arrived, planning each due ring's
// next deadline from that ring's own demand (pending high-water plus
// lost delta since the ring was last planned). Rings not yet due are
// untouched: their gauges keep accumulating and are read when their own
// deadline fires. After the call, Interval reports the time to the
// earliest pending deadline — the step the drive loop should sleep.
//
// The returned set is valid until the next AdvancePerRing call. Drain
// exactly the returned rings (b.StreamDueTo(sink, due.Has)) before
// advancing again, since planning assumes a due ring's pending gauge
// resets at its deadline.
func (s *DrainScheduler) AdvancePerRing(elapsed sim.Duration) *RingSet {
	s.now += elapsed
	s.drains++
	s.due.n = 0

	next := s.pol.Max
	for bi, pb := range s.b.perfBuffers() {
		rings := pb.NumRings()
		for len(s.lastLost[bi]) < rings {
			s.lastLost[bi] = append(s.lastLost[bi], 0)
			s.deadline[bi] = append(s.deadline[bi], 0)
			s.ringIval[bi] = append(s.ringIval[bi], s.interval)
			s.lastDrain[bi] = append(s.lastDrain[bi], 0)
			s.due.due[bi] = append(s.due.due[bi], false)
		}
		for cpu := 0; cpu < rings; cpu++ {
			if s.deadline[bi][cpu] > s.now {
				s.due.due[bi][cpu] = false
				if wait := s.deadline[bi][cpu] - s.now; wait < next {
					next = wait
				}
				continue
			}
			s.due.due[bi][cpu] = true
			s.due.n++
			s.ringDrains++

			lost := pb.LostOnCPU(cpu)
			delta := lost - s.lastLost[bi][cpu]
			s.lastLost[bi][cpu] = lost
			window := s.now - s.lastDrain[bi][cpu]
			s.lastDrain[bi][cpu] = s.now

			plan := s.pol.Max
			if demand := pb.PendingOnCPU(cpu) + int(delta); s.pol.Capacity > 0 && demand > 0 && window > 0 {
				target := s.pol.TargetFill * float64(s.pol.Capacity)
				plan = sim.Duration(target * float64(window) / float64(demand))
				if plan < s.pol.Min {
					plan = s.pol.Min
				}
				if plan > s.pol.Max {
					plan = s.pol.Max
				}
			} else if s.pol.Capacity > 0 {
				// Quiet ring: back off one planning step, not straight to
				// Max — same burst hedge as the global mode, applied per
				// ring so one idle CPU can't slow the others' cadence.
				if plan = s.ringIval[bi][cpu] * 2; plan > s.pol.Max {
					plan = s.pol.Max
				}
			}
			s.ringIval[bi][cpu] = plan
			s.deadline[bi][cpu] = s.now + plan
			if plan < next {
				next = plan
			}
		}
	}
	s.interval = next
	return &s.due
}

// NumRings reports the total per-CPU ring count across the bundle's
// three tracers — the all-rings drain cost per wakeup that per-ring
// deadlines amortize.
func (b *Bundle) NumRings() int {
	n := 0
	for _, pb := range b.perfBuffers() {
		n += pb.NumRings()
	}
	return n
}

// MaxRingPending reports the largest undrained record count on any
// single per-CPU ring across the three tracers — the gauge a drain
// scheduler plans from (capacity bounds apply per ring, not per
// buffer).
func (b *Bundle) MaxRingPending() (pending, cpu int) {
	for _, pb := range b.perfBuffers() {
		for c := 0; c < pb.NumRings(); c++ {
			if p := pb.PendingOnCPU(c); p > pending {
				pending, cpu = p, c
			}
		}
	}
	return pending, cpu
}
