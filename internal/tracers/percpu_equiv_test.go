package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// tracedSession boots a deterministic SYN+AVP world with all three
// tracers attached and runs it, leaving the perf rings full and
// undrained.
func tracedSession(t *testing.T, seed uint64) *Bundle {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 6, Seed: seed})
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	apps.BuildAVP(w, apps.AVPConfig{})
	apps.BuildSYN(w, apps.SYNConfig{})
	b.StopInit()
	w.Run(4 * sim.Second)
	return b
}

// preSplitDrain reproduces the single-buffer implementation Drain had
// before the per-CPU split: each tracer's records in one emission-ordered
// stream, the three streams merged. It is the reference the per-CPU
// drain must match byte for byte.
func preSplitDrain(t *testing.T, b *Bundle) *trace.Trace {
	t.Helper()
	var streams [3]*trace.Trace
	for i, pb := range []*ebpf.PerfBuffer{b.initPB, b.rtPB, b.knPB} {
		recs := pb.Drain() // merged across rings = emission order
		tr := &trace.Trace{Events: make([]trace.Event, 0, len(recs))}
		for _, rec := range recs {
			ev, err := DecodeRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			tr.Events = append(tr.Events, ev)
		}
		streams[i] = tr
	}
	return trace.Merge(streams[0], streams[1], streams[2])
}

// TestPerCPUDrainMatchesPreSplit runs two identical sessions and drains
// one through the per-CPU Bundle.Drain (3×NCPU ring streams merged) and
// the other through the pre-split reference. Event order and content
// must be identical — the acceptance bar for the ring split.
func TestPerCPUDrainMatchesPreSplit(t *testing.T) {
	const seed = 42
	bundleNew := tracedSession(t, seed)
	bundleRef := tracedSession(t, seed)

	got, err := bundleNew.Drain()
	if err != nil {
		t.Fatal(err)
	}
	want := preSplitDrain(t, bundleRef)

	if got.Len() == 0 {
		t.Fatal("session produced no events")
	}
	if got.Len() != want.Len() {
		t.Fatalf("per-CPU drain has %d events, pre-split %d", got.Len(), want.Len())
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d differs:\n per-CPU:  %v\n pre-split: %v",
				i, got.Events[i], want.Events[i])
		}
	}

	// The merged drain must also be its own (Time, Seq) sort — the global
	// chronological order Algorithm 1 requires.
	sorted := got.Clone()
	sorted.SortByTime()
	for i := range got.Events {
		if got.Events[i] != sorted.Events[i] {
			t.Fatalf("drain output not (Time, Seq) sorted at %d", i)
		}
	}
}

// TestBundleRingsSpreadAcrossCPUs checks the split is real: a
// multi-CPU session materializes more than one ring on the RT tracer and
// the per-CPU byte accounting sums to the bundle totals.
func TestBundleRingsSpreadAcrossCPUs(t *testing.T) {
	b := tracedSession(t, 7)
	if rings := b.rtPB.NumRings(); rings < 2 {
		t.Fatalf("RT tracer materialized %d rings; events all landed on one CPU", rings)
	}
	perCPU := b.BytesPerCPU()
	var sum uint64
	active := 0
	for _, n := range perCPU {
		sum += n
		if n > 0 {
			active++
		}
	}
	if sum != b.TraceBytes() {
		t.Fatalf("per-CPU bytes sum %d != TraceBytes %d", sum, b.TraceBytes())
	}
	if active < 2 {
		t.Fatalf("only %d CPUs emitted; expected a multi-CPU spread", active)
	}
	for _, n := range b.LostPerCPU() {
		if n != 0 {
			t.Fatal("unbounded rings lost records")
		}
	}
}
