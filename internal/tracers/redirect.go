package tracers

import (
	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/rmw"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/umem"
)

// RedirectTracer is the comparison baseline of Sec. II-B: CARET-style
// LD_PRELOAD function redirection. Calls to the probed middleware
// functions are diverted into a tracing shim that records the event and
// then resolves and calls the original symbol — "running several lines of
// code to update addresses to find the original functions, which adds
// significant tracing overheads without any additional capabilities".
//
// It captures the same callback start/end, take, and write events as the
// eBPF ROS2-RT tracer (so models synthesized from either are equivalent),
// but each interception carries the redirection cost, and — unlike eBPF —
// it offers no in-kernel filtering for scheduler events.
type RedirectTracer struct {
	rt     *ebpf.Runtime
	events []trace.Event
	seq    uint64
	ids    []int

	// CostPerEventNs is the simulated per-interception overhead: PLT
	// indirection, original-symbol lookup, and trace serialization.
	// CARET-style shims measure on the order of a microsecond.
	CostPerEventNs float64
}

// NewRedirectTracer creates the baseline tracer against rt.
func NewRedirectTracer(rt *ebpf.Runtime) *RedirectTracer {
	return &RedirectTracer{rt: rt, CostPerEventNs: 1500}
}

func (r *RedirectTracer) emit(e trace.Event) {
	e.Seq = r.seq
	r.seq++
	r.events = append(r.events, e)
}

func (r *RedirectTracer) hook(sym ebpf.Symbol, fn func(ctx *ebpf.ExecContext)) {
	id := r.rt.AttachNativeHook(sym, ebpf.NativeHook{Fn: fn, CostNs: r.CostPerEventNs})
	r.ids = append(r.ids, id)
}

// Start intercepts the ROS2-RT function set. Entry-side shims observe both
// entry and return (the shim brackets the original call), so one hook per
// symbol suffices.
func (r *RedirectTracer) Start() {
	plain := func(kind trace.Kind) func(*ebpf.ExecContext) {
		return func(ctx *ebpf.ExecContext) {
			r.emit(trace.Event{Time: simTime(uint64(ctx.NowNs)), PID: ctx.PID, Kind: kind})
		}
	}
	// execute_* entries; exits are delivered via uretprobe-path firings,
	// which native hooks do not see — the shim instead brackets the call,
	// modeled here by hooking both firings through entry+take symbols.
	r.hook(rclcpp.SymExecuteTimer, plain(trace.KindTimerCBStart))
	r.hook(rclcpp.SymExecuteSubscription, plain(trace.KindSubCBStart))
	r.hook(rclcpp.SymExecuteService, plain(trace.KindServiceCBStart))
	r.hook(rclcpp.SymExecuteClient, plain(trace.KindClientCBStart))

	takeHook := func(kind trace.Kind) func(*ebpf.ExecContext) {
		return func(ctx *ebpf.ExecContext) {
			e := trace.Event{Time: simTime(uint64(ctx.NowNs)), PID: ctx.PID, Kind: kind}
			// The shim sees the arguments directly (it *is* the function),
			// so no probe_read dance is needed — but also no verifier
			// protects the traced process from the shim.
			if ctx.Mem != nil && len(ctx.Words) >= 1 {
				if cbid, err := ctx.Mem.ReadU64(umem.Addr(ctx.Words[0]) + rmw.EntityCBIDOff); err == nil {
					e.CBID = cbid
				}
				if p, err := ctx.Mem.ReadU64(umem.Addr(ctx.Words[0]) + rmw.EntityTopicPtrOff); err == nil {
					if s, err := ctx.Mem.ReadCString(umem.Addr(p), 64); err == nil {
						e.Topic = s
					}
				}
			}
			r.emit(e)
		}
	}
	r.hook(rmw.SymTakeInt, takeHook(trace.KindTakeInt))
	r.hook(rmw.SymTakeRequest, takeHook(trace.KindTakeRequest))
	r.hook(rmw.SymTakeResponse, takeHook(trace.KindTakeResponse))

	r.hook(dds.SymWrite, func(ctx *ebpf.ExecContext) {
		e := trace.Event{Time: simTime(uint64(ctx.NowNs)), PID: ctx.PID, Kind: trace.KindDDSWrite}
		if len(ctx.Words) >= 3 {
			e.SrcTS = int64(ctx.Words[2])
		}
		if ctx.Mem != nil && len(ctx.Words) >= 1 {
			if p, err := ctx.Mem.ReadU64(umem.Addr(ctx.Words[0])); err == nil {
				if s, err := ctx.Mem.ReadCString(umem.Addr(p), 64); err == nil {
					e.Topic = s
				}
			}
		}
		r.emit(e)
	})
}

// Stop removes all interceptions.
func (r *RedirectTracer) Stop() {
	for _, id := range r.ids {
		r.rt.DetachNativeHook(id)
	}
	r.ids = nil
}

// Events returns the captured events.
func (r *RedirectTracer) Events() []trace.Event { return r.events }

// CostNs returns the simulated overhead spent in the shims.
func (r *RedirectTracer) CostNs() float64 { return r.rt.NativeCostNs() }
