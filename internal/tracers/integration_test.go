package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/msgfilters"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// newTracedWorld builds a world with all three tracers attached.
func newTracedWorld(t *testing.T, cpus int, seed uint64) (*rclcpp.World, *Bundle) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	return w, b
}

func TestTimerToSubscriberPipeline(t *testing.T) {
	w, b := newTracedWorld(t, 2, 1)

	producer := w.NewNode("producer", 5, 0)
	consumer := w.NewNode("consumer", 5, 0)

	pub := producer.CreatePublisher("/t1")
	producer.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 2 * sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { pub.Publish("ping") },
	})
	consumer.CreateSubscription("/t1", rclcpp.SimpleBody{
		ET: sim.Constant{Value: 3 * sim.Millisecond},
	})

	w.Run(1 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}

	// Node creations observed with correct PIDs.
	nodes := tr.Nodes()
	if nodes["producer"] != producer.PID() || nodes["consumer"] != consumer.PID() {
		t.Fatalf("node map %v, pids %d/%d", nodes, producer.PID(), consumer.PID())
	}

	counts := map[trace.Kind]int{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	// 10 timer expiries in 1s at 100ms; the instance starting exactly at
	// the horizon may not complete within it.
	starts, ends := counts[trace.KindTimerCBStart], counts[trace.KindTimerCBEnd]
	if starts != 10 {
		t.Errorf("timer starts = %d, want 10", starts)
	}
	if ends != starts && ends != starts-1 {
		t.Errorf("timer ends = %d for %d starts", ends, starts)
	}
	if counts[trace.KindTimerCall] != starts {
		t.Errorf("P3 events = %d, want %d", counts[trace.KindTimerCall], starts)
	}
	if counts[trace.KindDDSWrite] < 9 {
		t.Errorf("P16 events = %d", counts[trace.KindDDSWrite])
	}
	// The last publish at ~1s may or may not be handled within horizon.
	if counts[trace.KindSubCBStart] < 9 || counts[trace.KindTakeInt] < 9 {
		t.Errorf("sub starts/takes = %d/%d, want >= 9",
			counts[trace.KindSubCBStart], counts[trace.KindTakeInt])
	}
	if counts[trace.KindSchedSwitch] == 0 {
		t.Error("no sched_switch events")
	}

	// Per-instance event ordering for the consumer: P5 then P6 then P8,
	// with matching topic and source timestamps linking back to a P16.
	sub := tr.FilterPID(consumer.PID()).ROSEvents()
	sub.SortByTime()
	writes := map[int64]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.KindDDSWrite && e.Topic == "/t1" {
			writes[e.SrcTS] = true
		}
	}
	state := 0
	takes := 0
	for _, e := range sub.Events {
		switch e.Kind {
		case trace.KindSubCBStart:
			if state != 0 {
				t.Fatalf("P5 in state %d", state)
			}
			state = 1
		case trace.KindTakeInt:
			if state != 1 {
				t.Fatalf("P6 in state %d", state)
			}
			if e.Topic != "/t1" {
				t.Fatalf("take topic %q", e.Topic)
			}
			if !writes[e.SrcTS] {
				t.Fatalf("take srcTS %d has no matching dds_write", e.SrcTS)
			}
			takes++
			state = 2
		case trace.KindSubCBEnd:
			if state != 2 {
				t.Fatalf("P8 in state %d", state)
			}
			state = 0
		}
	}
	if takes < 9 {
		t.Fatalf("only %d takes", takes)
	}

	// Kernel filtering: only traced PIDs appear in sched events.
	pids := map[uint32]bool{producer.PID(): true, consumer.PID(): true}
	for _, e := range tr.SchedEvents().Events {
		if !pids[e.PrevPID] && !pids[e.NextPID] && e.PrevPID != 0 && e.NextPID != 0 {
			t.Fatalf("unfiltered sched event %+v", e)
		}
	}
}

func TestServiceMultiClientDispatch(t *testing.T) {
	w, b := newTracedWorld(t, 2, 2)

	server := w.NewNode("server", 5, 0)
	clientA := w.NewNode("client_a", 5, 0)
	clientB := w.NewNode("client_b", 5, 0)

	server.CreateService("sv", sim.Constant{Value: sim.Millisecond}, nil)

	dispatchedA, dispatchedB := 0, 0
	ca := clientA.CreateClient("sv", rclcpp.BodyFunc(func(*rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
		dispatchedA++
		return sim.Millisecond, nil
	}))
	cb := clientB.CreateClient("sv", rclcpp.BodyFunc(func(*rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
		dispatchedB++
		return sim.Millisecond, nil
	}))

	// Only client A calls, via a timer on its node.
	clientA.CreateTimer(50*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 100 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) { ca.Call(nil) },
	})
	_ = cb

	w.Run(500 * sim.Millisecond)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if dispatchedA == 0 {
		t.Fatal("client A callback never dispatched")
	}
	if dispatchedB != 0 {
		t.Fatalf("client B dispatched %d times; responses must only dispatch the caller", dispatchedB)
	}

	// Both client nodes must see execute_client and P13/P14 events; B's P14
	// must carry ret=0, A's ret=1.
	sawB14 := false
	for _, e := range tr.FilterPID(clientB.PID()).Events {
		if e.Kind == trace.KindTakeTypeErased {
			sawB14 = true
			if e.Ret != 0 {
				t.Fatalf("client B P14 ret = %d", e.Ret)
			}
		}
	}
	if !sawB14 {
		t.Fatal("client B never produced P14 (response not delivered to all clients)")
	}
	sawA14 := false
	for _, e := range tr.FilterPID(clientA.PID()).Events {
		if e.Kind == trace.KindTakeTypeErased && e.Ret == 1 {
			sawA14 = true
		}
	}
	if !sawA14 {
		t.Fatal("client A has no dispatching P14")
	}

	// Request/response topics are classified correctly.
	reqSeen, respSeen := false, false
	for _, e := range tr.Events {
		if e.Kind == trace.KindDDSWrite {
			if dds.IsRequestTopic(e.Topic) {
				reqSeen = true
			}
			if dds.IsResponseTopic(e.Topic) {
				respSeen = true
			}
		}
	}
	if !reqSeen || !respSeen {
		t.Fatalf("request/response writes seen = %v/%v", reqSeen, respSeen)
	}
}

func TestMessageFilterSyncFiresP7AndFuses(t *testing.T) {
	w, b := newTracedWorld(t, 2, 3)

	sensorish := w.NewNode("drivers", 5, 0)
	fusion := w.NewNode("fusion", 5, 0)

	pf := sensorish.CreatePublisher("/f1")
	pr := sensorish.CreatePublisher("/f2")
	sensorish.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET: sim.Constant{Value: 100 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) {
			pf.Publish("front")
			pr.Publish("rear")
		},
	})

	fusedPub := fusion.CreatePublisher("/fused")
	sync := msgfilters.New(fusion, msgfilters.Config{
		Topics:  []string{"/f1", "/f2"},
		Policy:  msgfilters.ApproximateTime{Slop: 10 * sim.Millisecond},
		ReadET:  []sim.Distribution{sim.Constant{Value: 200 * sim.Microsecond}, sim.Constant{Value: 150 * sim.Microsecond}},
		FusedET: sim.Constant{Value: 2 * sim.Millisecond},
		Fused: func(fc *msgfilters.FusedContext) {
			if len(fc.Set) != 2 {
				t.Errorf("fused set size %d", len(fc.Set))
			}
			fusedPub.Publish("fused")
		},
	})

	w.Run(1 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if sync.Matches() < 9 {
		t.Fatalf("only %d fusion matches", sync.Matches())
	}
	counts := map[trace.Kind]int{}
	fusedWrites := 0
	for _, e := range tr.Events {
		counts[e.Kind]++
		if e.Kind == trace.KindDDSWrite && e.Topic == "/fused" {
			fusedWrites++
		}
	}
	if counts[trace.KindSyncSubscribe] < 18 {
		t.Errorf("P7 events = %d, want ~20", counts[trace.KindSyncSubscribe])
	}
	if fusedWrites < 9 {
		t.Errorf("fused writes = %d", fusedWrites)
	}
	// The fused write must occur inside a subscription callback window of
	// the fusion node (between P5 and P8 of the same PID).
	evs := tr.FilterPID(fusion.PID()).ROSEvents()
	evs.SortByTime()
	depth := 0
	for _, e := range evs.Events {
		switch e.Kind {
		case trace.KindSubCBStart:
			depth++
		case trace.KindSubCBEnd:
			depth--
		case trace.KindDDSWrite:
			if e.Topic == "/fused" && depth != 1 {
				t.Fatalf("fused write outside callback window (depth %d)", depth)
			}
		}
	}
}

func TestSessionSegmentation(t *testing.T) {
	// Fig. 2: stop TR_RT+TR_KN mid-run, save, restart with empty buffers;
	// merging the segments yields a complete trace.
	w, b := newTracedWorld(t, 2, 4)
	node := w.NewNode("solo", 5, 0)
	pub := node.CreatePublisher("/x")
	node.CreateTimer(10*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
	})
	b.StopInit()

	var segments []*trace.Trace
	for i := 0; i < 4; i++ {
		w.Run(250 * sim.Millisecond)
		seg, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		segments = append(segments, seg)
	}
	merged := trace.Merge(segments...)

	starts := 0
	for _, e := range merged.Events {
		if e.Kind == trace.KindTimerCBStart {
			starts++
		}
	}
	if starts != 100 {
		t.Fatalf("merged segments contain %d timer starts, want 100", starts)
	}
	// Ordering is monotone in (time, seq).
	for i := 1; i < len(merged.Events); i++ {
		a, bb := merged.Events[i-1], merged.Events[i]
		if bb.Time < a.Time || (bb.Time == a.Time && bb.Seq < a.Seq) {
			t.Fatal("merged trace not sorted")
		}
	}
}

func TestKernelFilteringReducesVolume(t *testing.T) {
	run := func(filtered bool) uint64 {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 5})
		b, err := NewBundle(w.Runtime())
		if err != nil {
			t.Fatal(err)
		}
		BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartKernel(filtered); err != nil {
			t.Fatal(err)
		}
		// One traced ROS2 node plus many untraced background threads.
		node := w.NewNode("ros_node", 5, 0)
		pub := node.CreatePublisher("/x")
		node.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
			ET:     sim.Constant{Value: sim.Millisecond},
			Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
		})
		for i := 0; i < 8; i++ {
			spawnChatterThread(w, 2*sim.Millisecond)
		}
		w.Run(2 * sim.Second)
		return b.knPB.Bytes()
	}
	filteredBytes := run(true)
	unfilteredBytes := run(false)
	if filteredBytes == 0 {
		t.Fatal("filtered kernel trace empty")
	}
	if unfilteredBytes < 10*filteredBytes {
		t.Fatalf("filtering reduced kernel trace only %.1fx (want >= 10x): %d vs %d",
			float64(unfilteredBytes)/float64(filteredBytes), unfilteredBytes, filteredBytes)
	}
}

func TestProbeOverheadAccounting(t *testing.T) {
	w, b := newTracedWorld(t, 2, 6)
	node := w.NewNode("n", 5, 0)
	pub := node.CreatePublisher("/x")
	node.CreateTimer(10*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { pub.Publish(1) },
	})
	w.Run(1 * sim.Second)
	st := w.Runtime().Stats()
	if st.Runs == 0 || st.FaultedRuns != 0 {
		t.Fatalf("stats %+v", st)
	}
	if w.Runtime().CostNs() <= 0 {
		t.Fatal("no cost accounted")
	}
	if b.Lost() != 0 {
		t.Fatalf("lost records: %d", b.Lost())
	}
	// Probe cost must be a small fraction of application CPU time.
	appNs := float64(node.Thread().CPUTime())
	if ratio := w.Runtime().CostNs() / appNs; ratio > 0.05 {
		t.Fatalf("probe overhead ratio %.4f too high", ratio)
	}
}

// spawnChatterThread creates an untraced background thread alternating a
// short compute and a sleep, generating sched_switch noise for the
// filtering experiment.
func spawnChatterThread(w *rclcpp.World, period sim.Duration) {
	m := w.Machine()
	state := 0
	var pid sched.PID
	th := m.Spawn("chatter", 1, 0, sched.ProcFunc(func(*sched.Machine) sched.Demand {
		state++
		if state%2 == 1 {
			return sched.Compute(100 * sim.Microsecond)
		}
		w.Engine().After(period, func() { m.Wake(pid) })
		return sched.Block()
	}))
	pid = th.PID()
}
