// Package tracers implements the paper's three tracers as bundles of eBPF
// programs: ROS2-INIT (P1), ROS2-RT (P2–P16) and Kernel (sched_switch,
// PID-filtered through a BPF map populated by P1's program).
//
// Every probe is a verified bytecode program; argument structures are
// traversed with probe_read/probe_read_str, and the source-timestamp
// out-parameter is captured with the entry/exit address-map technique of
// Sec. III-A. Programs write fixed-layout records into perf buffers; the
// user-space side (decode.go) turns drained records into trace.Events.
package tracers

import (
	"fmt"

	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/rmw"
	"github.com/tracesynth/rostracer/internal/trace"
)

// Record layouts (all fields u64, little endian):
//
//	plain (24B):  kind, pid, ts                       — P2,P4,P5,P7,P8,P9,P11,P12,P15
//	id    (32B):  kind, pid, ts, cbid                 — P3
//	ret   (32B):  kind, pid, ts, ret                  — P14
//	full  (112B): kind, pid, ts, cbid, srcts, ret, 64-byte string — P1,P6,P10,P13,P16
//	sched (64B):  kind, cpu, ts, prev_pid, prev_prio, prev_state, next_pid, next_prio
const (
	recPlainSize = 24
	recIDSize    = 32
	recRetSize   = 32
	recFullSize  = 112
	recSchedSize = 64
	strFieldSize = 64
)

// Offsets within the full record, relative to the frame pointer.
const (
	fullBase  = -112
	offKind   = fullBase
	offPID    = fullBase + 8
	offTS     = fullBase + 16
	offCBID   = fullBase + 24
	offSrcTS  = fullBase + 32
	offRet    = fullBase + 40
	offStr    = fullBase + 48
	offScrtch = -120 // 8-byte scratch below the record
)

// ctxWords is the context width all tracer programs are verified against.
const ctxWords = 8

// emitPlainHeader writes kind, pid and timestamp at base (must not rely on
// R1 still holding the context).
func emitPlainHeader(a *ebpf.Assembler, kind trace.Kind, base int32) {
	a.StImmStack(ebpf.R10, base, int64(kind), 8)
	a.Call(ebpf.HelperGetCurrentPid)
	a.StxStack(ebpf.R10, base+8, ebpf.R0, 8)
	a.Call(ebpf.HelperKtimeGetNs)
	a.StxStack(ebpf.R10, base+16, ebpf.R0, 8)
}

// emitOutput emits [base, base+size) into the perf buffer fd.
func emitOutput(a *ebpf.Assembler, pbFD int64, base int32, size int64) {
	a.MovImm(ebpf.R1, pbFD)
	a.MovReg(ebpf.R2, ebpf.R10)
	a.AddImm(ebpf.R2, int64(base))
	a.MovImm(ebpf.R3, size)
	a.Call(ebpf.HelperPerfOutput)
}

// emitProbeRead reads size bytes from the address in srcReg into fp+dstOff.
func emitProbeRead(a *ebpf.Assembler, dstOff int32, size int64, srcReg ebpf.Reg) {
	a.MovReg(ebpf.R1, ebpf.R10)
	a.AddImm(ebpf.R1, int64(dstOff))
	a.MovImm(ebpf.R2, size)
	a.MovReg(ebpf.R3, srcReg)
	a.Call(ebpf.HelperProbeRead)
}

// emitProbeReadStr reads a C string from the address in srcReg into
// fp+dstOff (size bytes, NUL padded).
func emitProbeReadStr(a *ebpf.Assembler, dstOff int32, size int64, srcReg ebpf.Reg) {
	a.MovReg(ebpf.R1, ebpf.R10)
	a.AddImm(ebpf.R1, int64(dstOff))
	a.MovImm(ebpf.R2, size)
	a.MovReg(ebpf.R3, srcReg)
	a.Call(ebpf.HelperProbeReadStr)
}

// plainProg builds the program for header-only probes.
func plainProg(name string, kind trace.Kind, pbFD int64) *ebpf.Program {
	a := ebpf.NewAssembler(name)
	emitPlainHeader(a, kind, -recPlainSize)
	emitOutput(a, pbFD, -recPlainSize, recPlainSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// retProg builds P14: record the uretprobe's return value (ctx word 0).
func retProg(name string, kind trace.Kind, pbFD int64) *ebpf.Program {
	a := ebpf.NewAssembler(name)
	a.LdxCtx(ebpf.R6, ebpf.R1, 0) // return value, before helpers clobber R1
	emitPlainHeader(a, kind, -recRetSize)
	a.StxStack(ebpf.R10, -recRetSize+24, ebpf.R6, 8)
	emitOutput(a, pbFD, -recRetSize, recRetSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// timerCallProg builds P3: the timer descriptor address is argument 0; its
// first field is the callback handle.
func timerCallProg(pbFD int64) *ebpf.Program {
	a := ebpf.NewAssembler("p3_rcl_timer_call")
	a.LdxCtx(ebpf.R6, ebpf.R1, 0) // timer descriptor address
	emitPlainHeader(a, trace.KindTimerCall, -recIDSize)
	emitProbeRead(a, -recIDSize+24, 8, ebpf.R6) // cbid = *(u64*)(timer+0)
	emitOutput(a, pbFD, -recIDSize, recIDSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// createNodeProg builds P1: emit the node name and register the PID in the
// kernel tracer's filter map (the paper shares P1's PIDs with the
// sched_switch handler through a BPF map).
func createNodeProg(pbFD, pidMapFD int64) *ebpf.Program {
	a := ebpf.NewAssembler("p1_rmw_create_node")
	a.LdxCtx(ebpf.R6, ebpf.R1, 0) // node name address
	a.Call(ebpf.HelperGetCurrentPid)
	a.MovReg(ebpf.R8, ebpf.R0)
	a.MovImm(ebpf.R1, pidMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.MovImm(ebpf.R3, 1)
	a.Call(ebpf.HelperMapUpdate)

	a.StImmStack(ebpf.R10, offKind, int64(trace.KindCreateNode), 8)
	a.StxStack(ebpf.R10, offPID, ebpf.R8, 8)
	a.Call(ebpf.HelperKtimeGetNs)
	a.StxStack(ebpf.R10, offTS, ebpf.R0, 8)
	a.StImmStack(ebpf.R10, offCBID, 0, 8)
	a.StImmStack(ebpf.R10, offSrcTS, 0, 8)
	a.StImmStack(ebpf.R10, offRet, 0, 8)
	emitProbeReadStr(a, offStr, strFieldSize, ebpf.R6)
	emitOutput(a, pbFD, fullBase, recFullSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// takeEntryProg builds the entry half of P6/P10/P13: remember the entity
// and srcTS-out-parameter addresses in per-PID maps.
func takeEntryProg(name string, entMapFD, srcMapFD int64) *ebpf.Program {
	a := ebpf.NewAssembler(name)
	a.LdxCtx(ebpf.R6, ebpf.R1, 0) // entity descriptor address
	a.LdxCtx(ebpf.R7, ebpf.R1, 2) // &source_timestamp
	a.Call(ebpf.HelperGetCurrentPid)
	a.MovReg(ebpf.R8, ebpf.R0)
	a.MovImm(ebpf.R1, entMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.MovReg(ebpf.R3, ebpf.R6)
	a.Call(ebpf.HelperMapUpdate)
	a.MovImm(ebpf.R1, srcMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.MovReg(ebpf.R3, ebpf.R7)
	a.Call(ebpf.HelperMapUpdate)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// takeExitProg builds the exit half of P6/P10/P13: recover the stored
// addresses, dereference the now-filled source timestamp, walk the entity
// descriptor for the callback handle and topic name, emit, clean up.
func takeExitProg(name string, kind trace.Kind, entMapFD, srcMapFD, pbFD int64) *ebpf.Program {
	a := ebpf.NewAssembler(name)
	a.Call(ebpf.HelperGetCurrentPid)
	a.MovReg(ebpf.R8, ebpf.R0)
	a.MovImm(ebpf.R1, entMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.Call(ebpf.HelperMapLookup)
	a.JeqImm(ebpf.R0, 0, "skip")
	a.MovReg(ebpf.R6, ebpf.R0) // entity address
	a.MovImm(ebpf.R1, srcMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.Call(ebpf.HelperMapLookup)
	a.JeqImm(ebpf.R0, 0, "skip")
	a.MovReg(ebpf.R7, ebpf.R0) // &source_timestamp

	a.StImmStack(ebpf.R10, offKind, int64(kind), 8)
	a.StxStack(ebpf.R10, offPID, ebpf.R8, 8)
	a.Call(ebpf.HelperKtimeGetNs)
	a.StxStack(ebpf.R10, offTS, ebpf.R0, 8)
	emitProbeRead(a, offCBID, 8, ebpf.R6) // cbid = entity->handle
	emitProbeRead(a, offSrcTS, 8, ebpf.R7)
	a.StImmStack(ebpf.R10, offRet, 0, 8)
	// topic = probe_read_str(entity->name)
	a.MovReg(ebpf.R9, ebpf.R6)
	a.AddImm(ebpf.R9, rmw.EntityTopicPtrOff)
	emitProbeRead(a, offScrtch, 8, ebpf.R9)
	a.LdxStack(ebpf.R9, ebpf.R10, offScrtch, 8)
	emitProbeReadStr(a, offStr, strFieldSize, ebpf.R9)
	emitOutput(a, pbFD, fullBase, recFullSize)

	a.MovImm(ebpf.R1, entMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.Call(ebpf.HelperMapDelete)
	a.MovImm(ebpf.R1, srcMapFD)
	a.MovReg(ebpf.R2, ebpf.R8)
	a.Call(ebpf.HelperMapDelete)
	a.Label("skip")
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// ddsWriteProg builds P16: the writer descriptor is argument 0 and the
// source timestamp is passed by value as argument 2.
func ddsWriteProg(pbFD int64) *ebpf.Program {
	a := ebpf.NewAssembler("p16_dds_write_impl")
	a.LdxCtx(ebpf.R6, ebpf.R1, 0) // writer descriptor address
	a.LdxCtx(ebpf.R7, ebpf.R1, 2) // source timestamp value
	emitPlainHeader(a, trace.KindDDSWrite, fullBase)
	a.StImmStack(ebpf.R10, offCBID, 0, 8)
	a.StxStack(ebpf.R10, offSrcTS, ebpf.R7, 8)
	a.StImmStack(ebpf.R10, offRet, 0, 8)
	emitProbeRead(a, offScrtch, 8, ebpf.R6) // topic name pointer
	a.LdxStack(ebpf.R9, ebpf.R10, offScrtch, 8)
	emitProbeReadStr(a, offStr, strFieldSize, ebpf.R9)
	emitOutput(a, pbFD, fullBase, recFullSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// Sched record offsets.
const (
	schedBase     = -recSchedSize
	offSchedKind  = schedBase
	offSchedCPU   = schedBase + 8
	offSchedTS    = schedBase + 16
	offSchedPPID  = schedBase + 24
	offSchedPPrio = schedBase + 32
	offSchedPSt   = schedBase + 40
	offSchedNPID  = schedBase + 48
	offSchedNPrio = schedBase + 56
)

// schedSwitchProg builds the sched_switch handler. With filtering enabled
// it drops events where neither PID is a ROS2 node, the memory-footprint
// optimization of Sec. III-B; unfiltered mode records everything (the
// comparison baseline).
func schedSwitchProg(pidMapFD, pbFD int64, filtered bool) *ebpf.Program {
	name := "sched_switch_filtered"
	if !filtered {
		name = "sched_switch_unfiltered"
	}
	a := ebpf.NewAssembler(name)
	// Spill tracepoint fields into the record while R1 is still the ctx:
	// prev_pid, prev_prio, prev_state, next_pid, next_prio.
	a.LdxCtx(ebpf.R6, ebpf.R1, 0)
	a.StxStack(ebpf.R10, offSchedPPID, ebpf.R6, 8)
	a.LdxCtx(ebpf.R6, ebpf.R1, 1)
	a.StxStack(ebpf.R10, offSchedPPrio, ebpf.R6, 8)
	a.LdxCtx(ebpf.R6, ebpf.R1, 2)
	a.StxStack(ebpf.R10, offSchedPSt, ebpf.R6, 8)
	a.LdxCtx(ebpf.R6, ebpf.R1, 3)
	a.StxStack(ebpf.R10, offSchedNPID, ebpf.R6, 8)
	a.LdxCtx(ebpf.R6, ebpf.R1, 4)
	a.StxStack(ebpf.R10, offSchedNPrio, ebpf.R6, 8)

	if filtered {
		a.LdxStack(ebpf.R6, ebpf.R10, offSchedPPID, 8)
		a.MovImm(ebpf.R1, pidMapFD)
		a.MovReg(ebpf.R2, ebpf.R6)
		a.Call(ebpf.HelperMapLookupExist)
		a.JneImm(ebpf.R0, 0, "keep")
		a.LdxStack(ebpf.R7, ebpf.R10, offSchedNPID, 8)
		a.MovImm(ebpf.R1, pidMapFD)
		a.MovReg(ebpf.R2, ebpf.R7)
		a.Call(ebpf.HelperMapLookupExist)
		a.JneImm(ebpf.R0, 0, "keep")
		a.MovImm(ebpf.R0, 0).Exit()
		a.Label("keep")
	}
	a.StImmStack(ebpf.R10, offSchedKind, int64(trace.KindSchedSwitch), 8)
	a.Call(ebpf.HelperGetSmpProcID)
	a.StxStack(ebpf.R10, offSchedCPU, ebpf.R0, 8)
	a.Call(ebpf.HelperKtimeGetNs)
	a.StxStack(ebpf.R10, offSchedTS, ebpf.R0, 8)
	emitOutput(a, pbFD, schedBase, recSchedSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// schedWakeupProg builds the sched_wakeup handler (Sec. VII extension):
// it records when a ROS2 node's executor thread becomes runnable, enabling
// per-callback waiting-time measurement. Filtered by the same PID map as
// sched_switch. Record: "id" layout with the woken PID in the pid slot and
// its priority in the fourth word.
func schedWakeupProg(pidMapFD, pbFD int64) *ebpf.Program {
	a := ebpf.NewAssembler("sched_wakeup_filtered")
	a.LdxCtx(ebpf.R6, ebpf.R1, 0) // woken pid
	a.LdxCtx(ebpf.R7, ebpf.R1, 1) // prio
	a.MovImm(ebpf.R1, pidMapFD)
	a.MovReg(ebpf.R2, ebpf.R6)
	a.Call(ebpf.HelperMapLookupExist)
	a.JneImm(ebpf.R0, 0, "keep")
	a.MovImm(ebpf.R0, 0).Exit()
	a.Label("keep")
	a.StImmStack(ebpf.R10, -recIDSize, int64(trace.KindSchedWakeup), 8)
	a.StxStack(ebpf.R10, -recIDSize+8, ebpf.R6, 8)
	a.Call(ebpf.HelperKtimeGetNs)
	a.StxStack(ebpf.R10, -recIDSize+16, ebpf.R0, 8)
	a.StxStack(ebpf.R10, -recIDSize+24, ebpf.R7, 8)
	emitOutput(a, pbFD, -recIDSize, recIDSize)
	a.MovImm(ebpf.R0, 0).Exit()
	return a.MustAssemble()
}

// ProbeSpec describes one Table I row for documentation and the Table I
// experiment.
type ProbeSpec struct {
	No        string
	Lib       string
	Func      string
	EventKind trace.Kind
	Purpose   string
}

// TableI lists the inserted probes exactly as in the paper's Table I.
var TableI = []ProbeSpec{
	{"P1", "rmw_cyclonedds_cpp", "rmw_create_node", trace.KindCreateNode, "node name and executor PID"},
	{"P2", "rclcpp", "execute_timer", trace.KindTimerCBStart, "timer CB starts"},
	{"P3", "rcl", "rcl_timer_call", trace.KindTimerCall, "timer CB ID"},
	{"P4", "rclcpp", "execute_timer", trace.KindTimerCBEnd, "timer CB ends"},
	{"P5", "rclcpp", "execute_subscription", trace.KindSubCBStart, "subscriber CB starts"},
	{"P6", "rmw_cyclonedds_cpp", "rmw_take_int", trace.KindTakeInt, "read event: sub CB ID, topic, srcTS"},
	{"P7", "message_filters", "operator", trace.KindSyncSubscribe, "subscriber CB used for data synchronization"},
	{"P8", "rclcpp", "execute_subscription", trace.KindSubCBEnd, "subscriber CB ends"},
	{"P9", "rclcpp", "execute_service", trace.KindServiceCBStart, "service CB starts"},
	{"P10", "rmw_cyclonedds_cpp", "rmw_take_request", trace.KindTakeRequest, "request received: svc CB ID, service, srcTS"},
	{"P11", "rclcpp", "execute_service", trace.KindServiceCBEnd, "service CB ends"},
	{"P12", "rclcpp", "execute_client", trace.KindClientCBStart, "client CB starts"},
	{"P13", "rmw_cyclonedds_cpp", "rmw_take_response", trace.KindTakeResponse, "response received: client CB ID, service, srcTS"},
	{"P14", "rclcpp", "take_type_erased_response", trace.KindTakeTypeErased, "whether client CB will be dispatched"},
	{"P15", "rclcpp", "execute_client", trace.KindClientCBEnd, "client CB ends"},
	{"P16", "cyclonedds", "dds_write_impl", trace.KindDDSWrite, "write event: topic and srcTS"},
}

func init() {
	if len(TableI) != 16 {
		panic(fmt.Sprintf("tracers: Table I has %d probes, want 16", len(TableI)))
	}
}
