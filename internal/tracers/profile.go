package tracers

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/tracesynth/rostracer/internal/ebpf"
)

// Bundle-level profile persistence: the warmup profile of every tracer
// program, serialized as one JSON document, so a re-created bundle (a
// harness re-run, a rostracer session restart) seeds its tier-0 counters
// from the previous session and dispatches at tier >= 1 from its first
// fire instead of re-warming past the hot threshold.

// profileFileVersion guards the on-disk schema; a bumped version simply
// invalidates old files (a stale profile costs a warmup, never
// correctness).
const profileFileVersion = 1

// ProfileSet is the on-disk form of a bundle's warmup profiles.
type ProfileSet struct {
	Version  int                   `json:"version"`
	Programs []ebpf.ProgramProfile `json:"programs"`
}

// Profiles snapshots the warmup profile of every loaded program, sorted
// by name so the serialized form is deterministic. Programs that never
// decoded are skipped.
func (b *Bundle) Profiles() []ebpf.ProgramProfile {
	names := make([]string, 0, len(b.progs))
	for name := range b.progs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ebpf.ProgramProfile, 0, len(names))
	for _, name := range names {
		if prof, ok := b.progs[name].Profile(); ok {
			out = append(out, prof)
		}
	}
	return out
}

// ApplyProfiles seeds the bundle's programs from saved profiles, matched
// by name and validated against program identity. Profiles for unknown
// programs or with a stale identity hash are skipped — a profile from an
// older build costs a warmup, never a wrong seed — and applied reports
// how many programs were actually seeded. Programs whose seeded run
// count has already crossed the hot threshold promote immediately.
func (b *Bundle) ApplyProfiles(profs []ebpf.ProgramProfile) (applied int) {
	for _, prof := range profs {
		p, ok := b.progs[prof.Name]
		if !ok {
			continue
		}
		if err := p.ApplyProfile(prof); err != nil {
			continue
		}
		applied++
	}
	return applied
}

// ProgramTiers reports every program's current dispatch tier by name
// (-1 undecoded, 0 warmup, 1 profile-guided, 2 trace-carrying).
func (b *Bundle) ProgramTiers() map[string]int {
	out := make(map[string]int, len(b.progs))
	for name, p := range b.progs {
		out[name] = p.DecodeTier()
	}
	return out
}

// TierCounts tallies the bundle's programs per dispatch tier:
// counts[0..2] are tiers 0..2, undecoded programs are not counted.
func (b *Bundle) TierCounts() [3]int {
	var counts [3]int
	for _, p := range b.progs {
		if t := p.DecodeTier(); t >= 0 && t < 3 {
			counts[t]++
		}
	}
	return counts
}

// SaveProfiles writes the bundle's warmup profiles to path. The file is
// written whole; a failed write removes the partial file rather than
// leaving a truncated profile looking complete.
func (b *Bundle) SaveProfiles(path string) (retErr error) {
	set := ProfileSet{Version: profileFileVersion, Programs: b.Profiles()}
	data, err := json.MarshalIndent(&set, "", "  ")
	if err != nil {
		return fmt.Errorf("tracers: encoding profiles: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		os.Remove(path)
		return fmt.Errorf("tracers: writing profiles: %w", err)
	}
	return nil
}

// LoadProfiles reads a profile set written by SaveProfiles and seeds the
// bundle from it. A missing file is not an error — a first session has
// nothing to warm from — and reports applied = 0.
func (b *Bundle) LoadProfiles(path string) (applied int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("tracers: reading profiles: %w", err)
	}
	var set ProfileSet
	if err := json.Unmarshal(data, &set); err != nil {
		return 0, fmt.Errorf("tracers: decoding profiles %s: %w", path, err)
	}
	if set.Version != profileFileVersion {
		return 0, nil // stale schema: fall back to a cold warmup
	}
	return b.ApplyProfiles(set.Programs), nil
}
