package tracers

import (
	"encoding/binary"
	"fmt"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/msgfilters"
	"github.com/tracesynth/rostracer/internal/rcl"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/rmw"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// Bundle owns the three tracers of Fig. 1/Fig. 2 — TR_IN (ROS2-INIT),
// TR_RT (ROS2-RT) and TR_KN (Kernel) — sharing one eBPF runtime, one PID
// filter map, and a global emission-sequence counter so events from the
// different perf buffers merge into a total order.
type Bundle struct {
	rt  *ebpf.Runtime
	seq uint64

	pidMap *ebpf.HashMap
	entMap *ebpf.HashMap
	srcMap *ebpf.HashMap

	initPB *ebpf.PerfBuffer
	rtPB   *ebpf.PerfBuffer
	knPB   *ebpf.PerfBuffer

	progs map[string]*ebpf.Program

	initIDs []int
	rtIDs   []int
	knIDs   []int

	// Streaming-drain scratch, reused across StreamTo calls so a
	// steady-state drain loop allocates nothing: per-ring record cursors,
	// the cursor-reference slice handed to the merge, and the merge
	// itself (which reuses its heads/heap storage on Reset).
	drainCurs []recordCursor
	drainRefs []trace.Cursor
	merge     trace.MergeStream
}

// NewBundle constructs maps, perf buffers, and all probe programs, and
// verifies ("loads") every program against rt. No probe is attached yet;
// use the Start* methods. Rings are unbounded, the configuration every
// figure experiment uses.
func NewBundle(rt *ebpf.Runtime) (*Bundle, error) {
	return NewBundleCapacity(rt, 0)
}

// NewBundleCapacity is NewBundle with a per-CPU ring record bound on
// every tracer buffer (0 means unbounded). Bounded rings model real
// perf_event_array overruns: records beyond the bound are counted lost
// against the overrunning CPU, the data the capacity-planning experiment
// sweeps.
func NewBundleCapacity(rt *ebpf.Runtime, perRingCapacity int) (*Bundle, error) {
	b := &Bundle{rt: rt, progs: make(map[string]*ebpf.Program)}
	b.pidMap = ebpf.NewHashMap("ros2_pids", 1024)
	b.entMap = ebpf.NewHashMap("take_entity_addr", 4096)
	b.srcMap = ebpf.NewHashMap("take_srcts_addr", 4096)
	pidFD := rt.RegisterMap(b.pidMap)
	entFD := rt.RegisterMap(b.entMap)
	srcFD := rt.RegisterMap(b.srcMap)

	b.initPB = ebpf.NewPerfBufferSeq("tr_in", perRingCapacity, &b.seq)
	b.rtPB = ebpf.NewPerfBufferSeq("tr_rt", perRingCapacity, &b.seq)
	b.knPB = ebpf.NewPerfBufferSeq("tr_kn", perRingCapacity, &b.seq)
	initFD := rt.RegisterMap(b.initPB)
	rtFD := rt.RegisterMap(b.rtPB)
	knFD := rt.RegisterMap(b.knPB)

	add := func(p *ebpf.Program) *ebpf.Program {
		b.progs[p.Name] = p
		return p
	}

	add(createNodeProg(initFD, pidFD))

	add(plainProg("p2_execute_timer_entry", trace.KindTimerCBStart, rtFD))
	add(timerCallProg(rtFD))
	add(plainProg("p4_execute_timer_exit", trace.KindTimerCBEnd, rtFD))
	add(plainProg("p5_execute_subscription_entry", trace.KindSubCBStart, rtFD))
	add(takeEntryProg("p6_rmw_take_int_entry", entFD, srcFD))
	add(takeExitProg("p6_rmw_take_int_exit", trace.KindTakeInt, entFD, srcFD, rtFD))
	add(plainProg("p7_msgfilters_operator", trace.KindSyncSubscribe, rtFD))
	add(plainProg("p8_execute_subscription_exit", trace.KindSubCBEnd, rtFD))
	add(plainProg("p9_execute_service_entry", trace.KindServiceCBStart, rtFD))
	add(takeEntryProg("p10_rmw_take_request_entry", entFD, srcFD))
	add(takeExitProg("p10_rmw_take_request_exit", trace.KindTakeRequest, entFD, srcFD, rtFD))
	add(plainProg("p11_execute_service_exit", trace.KindServiceCBEnd, rtFD))
	add(plainProg("p12_execute_client_entry", trace.KindClientCBStart, rtFD))
	add(takeEntryProg("p13_rmw_take_response_entry", entFD, srcFD))
	add(takeExitProg("p13_rmw_take_response_exit", trace.KindTakeResponse, entFD, srcFD, rtFD))
	add(retProg("p14_take_type_erased_response", trace.KindTakeTypeErased, rtFD))
	add(plainProg("p15_execute_client_exit", trace.KindClientCBEnd, rtFD))
	add(ddsWriteProg(rtFD))

	add(schedSwitchProg(pidFD, knFD, true))
	add(schedSwitchProg(pidFD, knFD, false))
	add(schedWakeupProg(pidFD, knFD))

	for name, p := range b.progs {
		if err := rt.Load(p, ctxWords); err != nil {
			return nil, fmt.Errorf("tracers: loading %s: %w", name, err)
		}
	}
	return b, nil
}

// Programs returns the loaded programs by name (for inspection and the
// Table I experiment).
func (b *Bundle) Programs() map[string]*ebpf.Program { return b.progs }

// PIDMap exposes the ROS2-PID filter map (user-space side reads it to know
// which PIDs the kernel tracer follows).
func (b *Bundle) PIDMap() *ebpf.HashMap { return b.pidMap }

func (b *Bundle) attach(ids *[]int, kind ebpf.AttachKind, sym ebpf.Symbol, tp string, prog string) error {
	p, ok := b.progs[prog]
	if !ok {
		return fmt.Errorf("tracers: unknown program %q", prog)
	}
	var id int
	var err error
	switch kind {
	case ebpf.AttachUprobe:
		id, err = b.rt.AttachUprobe(sym, p)
	case ebpf.AttachUretprobe:
		id, err = b.rt.AttachUretprobe(sym, p)
	default:
		id, err = b.rt.AttachTracepoint(tp, p)
	}
	if err != nil {
		return err
	}
	*ids = append(*ids, id)
	return nil
}

func (b *Bundle) detach(ids *[]int) {
	for _, id := range *ids {
		b.rt.Detach(id)
	}
	*ids = nil
}

// StartInit attaches TR_IN (P1). It is activated before applications start
// so that every node creation is observed.
func (b *Bundle) StartInit() error {
	return b.attach(&b.initIDs, ebpf.AttachUprobe, rmw.SymCreateNode, "", "p1_rmw_create_node")
}

// StopInit detaches TR_IN.
func (b *Bundle) StopInit() { b.detach(&b.initIDs) }

// StartRT attaches TR_RT (P2–P16).
func (b *Bundle) StartRT() error {
	type at struct {
		kind ebpf.AttachKind
		sym  ebpf.Symbol
		prog string
	}
	plan := []at{
		{ebpf.AttachUprobe, rclcpp.SymExecuteTimer, "p2_execute_timer_entry"},
		{ebpf.AttachUprobe, rcl.SymTimerCall, "p3_rcl_timer_call"},
		{ebpf.AttachUretprobe, rclcpp.SymExecuteTimer, "p4_execute_timer_exit"},
		{ebpf.AttachUprobe, rclcpp.SymExecuteSubscription, "p5_execute_subscription_entry"},
		{ebpf.AttachUprobe, rmw.SymTakeInt, "p6_rmw_take_int_entry"},
		{ebpf.AttachUretprobe, rmw.SymTakeInt, "p6_rmw_take_int_exit"},
		{ebpf.AttachUprobe, msgfilters.SymOperator, "p7_msgfilters_operator"},
		{ebpf.AttachUretprobe, rclcpp.SymExecuteSubscription, "p8_execute_subscription_exit"},
		{ebpf.AttachUprobe, rclcpp.SymExecuteService, "p9_execute_service_entry"},
		{ebpf.AttachUprobe, rmw.SymTakeRequest, "p10_rmw_take_request_entry"},
		{ebpf.AttachUretprobe, rmw.SymTakeRequest, "p10_rmw_take_request_exit"},
		{ebpf.AttachUretprobe, rclcpp.SymExecuteService, "p11_execute_service_exit"},
		{ebpf.AttachUprobe, rclcpp.SymExecuteClient, "p12_execute_client_entry"},
		{ebpf.AttachUprobe, rmw.SymTakeResponse, "p13_rmw_take_response_entry"},
		{ebpf.AttachUretprobe, rmw.SymTakeResponse, "p13_rmw_take_response_exit"},
		{ebpf.AttachUretprobe, rclcpp.SymTakeTypeErased, "p14_take_type_erased_response"},
		{ebpf.AttachUretprobe, rclcpp.SymExecuteClient, "p15_execute_client_exit"},
		{ebpf.AttachUprobe, dds.SymWrite, "p16_dds_write_impl"},
	}
	for _, a := range plan {
		if err := b.attach(&b.rtIDs, a.kind, a.sym, "", a.prog); err != nil {
			b.detach(&b.rtIDs)
			return err
		}
	}
	return nil
}

// StopRT detaches TR_RT.
func (b *Bundle) StopRT() { b.detach(&b.rtIDs) }

// StartKernel attaches TR_KN to sched:sched_switch. filtered selects the
// PID-filtered program (the paper's configuration); unfiltered records
// every switch (the memory-footprint comparison baseline).
func (b *Bundle) StartKernel(filtered bool) error {
	prog := "sched_switch_filtered"
	if !filtered {
		prog = "sched_switch_unfiltered"
	}
	if err := b.attach(&b.knIDs, ebpf.AttachTracepoint, ebpf.Symbol{}, "sched:sched_switch", prog); err != nil {
		return err
	}
	// The waiting-time extension (Sec. VII): wakeup events, PID-filtered.
	return b.attach(&b.knIDs, ebpf.AttachTracepoint, ebpf.Symbol{}, "sched:sched_wakeup", "sched_wakeup_filtered")
}

// StopKernel detaches TR_KN.
func (b *Bundle) StopKernel() { b.detach(&b.knIDs) }

// StopAll detaches everything.
func (b *Bundle) StopAll() {
	b.StopInit()
	b.StopRT()
	b.StopKernel()
}

// perfBuffers returns the three tracer buffers in TR_IN, TR_RT, TR_KN
// order.
func (b *Bundle) perfBuffers() [3]*ebpf.PerfBuffer {
	return [3]*ebpf.PerfBuffer{b.initPB, b.rtPB, b.knPB}
}

// SetRingFault installs (or, with nil, removes) one emission fault hook
// on all three tracer buffers. A drop the hook forces counts as lost on
// the emitting ring, exactly like a capacity overrun, so the usual
// Lost/LostPerCPU accounting covers injected ring faults too. Emissions
// consult the hook in a deterministic order (the simulation is
// single-threaded), so a scripted hook produces the same fault schedule
// for the same seed.
func (b *Bundle) SetRingFault(hook func(cpu int) bool) {
	for _, pb := range b.perfBuffers() {
		pb.SetEmitFault(hook)
	}
}

// TraceBytes reports the cumulative perf-buffer payload bytes across all
// three tracers and all CPU rings — the paper's trace-volume metric.
func (b *Bundle) TraceBytes() uint64 {
	return b.initPB.Bytes() + b.rtPB.Bytes() + b.knPB.Bytes()
}

// Lost reports records dropped due to per-CPU ring capacity, summed over
// the three tracers and all CPUs.
func (b *Bundle) Lost() uint64 {
	return b.initPB.Lost() + b.rtPB.Lost() + b.knPB.Lost()
}

// NumCPUStats reports how many per-CPU slots LostPerCPU/BytesPerCPU
// cover: the highest CPU any tracer ring materialized, plus one.
func (b *Bundle) NumCPUStats() int {
	n := 0
	for _, pb := range b.perfBuffers() {
		if r := pb.NumRings(); r > n {
			n = r
		}
	}
	return n
}

// LostPerCPU reports records dropped per CPU, summed across the three
// tracers — the realistic lost-record accounting a per-CPU
// perf_event_array gives user space.
func (b *Bundle) LostPerCPU() []uint64 {
	out := make([]uint64, b.NumCPUStats())
	for _, pb := range b.perfBuffers() {
		for cpu := 0; cpu < pb.NumRings(); cpu++ {
			out[cpu] += pb.LostOnCPU(cpu)
		}
	}
	return out
}

// BytesPerCPU reports cumulative payload bytes emitted per CPU, summed
// across the three tracers.
func (b *Bundle) BytesPerCPU() []uint64 {
	out := make([]uint64, b.NumCPUStats())
	for _, pb := range b.perfBuffers() {
		for cpu := 0; cpu < pb.NumRings(); cpu++ {
			out[cpu] += pb.BytesOnCPU(cpu)
		}
	}
	return out
}

// PendingPerCPU reports records emitted but not yet drained per CPU,
// summed across the three tracers — the ring-fill gauge the metrics
// endpoint exposes alongside LostPerCPU.
func (b *Bundle) PendingPerCPU() []int {
	out := make([]int, b.NumCPUStats())
	for _, pb := range b.perfBuffers() {
		for cpu := 0; cpu < pb.NumRings(); cpu++ {
			out[cpu] += pb.PendingOnCPU(cpu)
		}
	}
	return out
}

// recordCursor adapts one drained per-CPU ring segment to a decoded
// event stream: records decode lazily, one at a time, directly out of
// the ring's arena chunks as the merge pulls them, so the streaming
// drain never materializes a per-ring record or event slice.
type recordCursor struct {
	recs ebpf.RecordCursor
}

// Next implements trace.Cursor.
func (c *recordCursor) Next() (trace.Event, bool, error) {
	rec, ok := c.recs.Next()
	if !ok {
		return trace.Event{}, false, nil
	}
	ev, err := DecodeRecord(rec)
	if err != nil {
		return trace.Event{}, false, err
	}
	return ev, true, nil
}

// StreamTo drains the three tracers into sink: each tracer owns one ring
// per CPU, every ring's current segment becomes a lazily-decoded cursor,
// and a tournament-heap merge delivers the 3×NCPU streams to the sink in
// (Time, Seq) order — each ring drains in emission order, monotonic in
// (Time, Seq) since virtual time never runs backwards and the shared
// emission counter only grows. No merged trace is ever materialized: the
// merge holds at most one decoded event per ring, so peak buffering is
// bounded by the ring count (plus the raw segments still resident in
// the ring arena chunks), independent of how many events a drain covers.
//
// The drain is zero-copy and, at steady state, allocation-free: records
// decode in place out of the arena chunks (DecodeRecord copies nothing
// out of a record — scalar fields are read directly and names intern to
// canonical strings), the chunks stay pinned until the sink has seen
// every event of the segment, and on return they are released to their
// rings for the next emission burst to reuse.
func (b *Bundle) StreamTo(sink trace.Sink) (err error) {
	return b.StreamDueTo(sink, nil)
}

// StreamDueTo is StreamTo restricted to the rings due reports true for
// (nil means all): rings left undrained keep accumulating, so a drain
// scheduler with per-ring deadlines can skip cold rings entirely
// instead of paying the cursor setup for every ring on every wakeup.
// The merged output is (Time, Seq)-sorted within this drain, but a ring
// drained later may hold events older than ones already delivered — the
// segment store's read-time merge absorbs that; sinks that need one
// globally ordered stream must drain all rings together (StreamTo).
func (b *Bundle) StreamDueTo(sink trace.Sink, due func(tracer, cpu int) bool) (err error) {
	pbs := b.perfBuffers()
	nrings := 0
	for _, pb := range pbs {
		nrings += pb.NumRings()
	}
	if cap(b.drainCurs) < nrings {
		b.drainCurs = make([]recordCursor, nrings)
	}
	curs := b.drainCurs[:nrings]
	refs := b.drainRefs[:0]
	if cap(refs) < nrings {
		refs = make([]trace.Cursor, 0, nrings)
	}
	n := 0
	for bi, pb := range pbs {
		for cpu := 0; cpu < pb.NumRings(); cpu++ {
			if due != nil && !due(bi, cpu) {
				continue
			}
			rc := &curs[n]
			n++
			pb.DrainCursorInto(&rc.recs, cpu)
			if rc.recs.Len() == 0 {
				rc.recs.Release()
				continue
			}
			refs = append(refs, rc)
		}
	}
	b.drainRefs = refs[:0]
	if len(refs) == 0 {
		return nil
	}
	// Chunks stay pinned until the sink returns; only then do the
	// segments recycle.
	defer func() {
		for i := range curs[:n] {
			curs[i].recs.Release()
		}
	}()
	return b.merge.Reset(refs...).Run(sink)
}

// Drain decodes and merges all pending records from the three tracers into
// one chronologically sorted trace: the batch-compatibility wrapper over
// StreamTo, collecting the stream into a single exactly-sized trace.
func (b *Bundle) Drain() (*trace.Trace, error) {
	var col trace.Collector
	pending := 0
	for _, pb := range b.perfBuffers() {
		pending += pb.Pending()
	}
	col.Grow(pending)
	if err := b.StreamTo(&col); err != nil {
		return nil, err
	}
	return &col.Trace, nil
}

// BridgeSched wires the simulated machine's scheduler notifications into
// the kernel tracepoints, standing in for the kernel's static tracepoint
// emission.
func BridgeSched(m *sched.Machine, rt *ebpf.Runtime) {
	swSite := rt.TracepointSiteFor("sched:sched_switch")
	wuSite := rt.TracepointSiteFor("sched:sched_wakeup")
	m.OnSwitch = func(sw sched.Switch) {
		swSite.Fire(sw.CPU,
			uint64(sw.PrevPID), uint64(sw.PrevPrio), uint64(sw.PrevState),
			uint64(sw.NextPID), uint64(sw.NextPrio))
	}
	m.OnWakeup = func(wu sched.Wakeup) {
		wuSite.Fire(0, uint64(wu.PID), uint64(wu.Prio))
	}
}

// DecodeRecord converts one perf record into a trace event.
func DecodeRecord(rec ebpf.PerfRecord) (trace.Event, error) {
	var e trace.Event
	if len(rec.Data) < recPlainSize {
		return e, fmt.Errorf("tracers: record too short: %d bytes", len(rec.Data))
	}
	f := func(i int) uint64 { return binary.LittleEndian.Uint64(rec.Data[i*8:]) }
	kind := trace.Kind(f(0))
	e.Kind = kind
	e.Seq = rec.Seq

	if kind == trace.KindSchedSwitch {
		if len(rec.Data) != recSchedSize {
			return e, fmt.Errorf("tracers: sched record has %d bytes", len(rec.Data))
		}
		e.CPU = int32(f(1))
		e.Time = simTime(f(2))
		e.PrevPID = uint32(f(3))
		e.PrevPrio = int32(f(4))
		e.PrevState = int32(f(5))
		e.NextPID = uint32(f(6))
		e.NextPrio = int32(f(7))
		return e, nil
	}

	e.PID = uint32(f(1))
	e.Time = simTime(f(2))
	switch {
	case kind == trace.KindSchedWakeup:
		if len(rec.Data) != recIDSize {
			return e, fmt.Errorf("tracers: wakeup record has %d bytes", len(rec.Data))
		}
		// pid slot holds the woken thread; mirror it into NextPID so that
		// FilterPID picks wakeups up alongside switches.
		e.NextPID = e.PID
		e.NextPrio = int32(f(3))
	case kind == trace.KindTimerCall:
		if len(rec.Data) != recIDSize {
			return e, fmt.Errorf("tracers: P3 record has %d bytes", len(rec.Data))
		}
		e.CBID = f(3)
	case kind == trace.KindTakeTypeErased:
		if len(rec.Data) != recRetSize {
			return e, fmt.Errorf("tracers: P14 record has %d bytes", len(rec.Data))
		}
		e.Ret = f(3)
	case kind == trace.KindCreateNode || kind.IsTake() || kind == trace.KindDDSWrite:
		if len(rec.Data) != recFullSize {
			return e, fmt.Errorf("tracers: %v record has %d bytes", kind, len(rec.Data))
		}
		e.CBID = f(3)
		e.SrcTS = int64(f(4))
		e.Ret = f(5)
		s := rec.Data[48:recFullSize]
		n := 0
		for n < len(s) && s[n] != 0 {
			n++
		}
		// Node and topic names recur on every record; interning returns
		// the canonical string instead of allocating one per record.
		if kind == trace.KindCreateNode {
			e.Node = trace.InternBytes(s[:n])
		} else {
			e.Topic = trace.InternBytes(s[:n])
		}
	default:
		if len(rec.Data) != recPlainSize {
			return e, fmt.Errorf("tracers: %v record has %d bytes", kind, len(rec.Data))
		}
	}
	return e, nil
}

func simTime(v uint64) sim.Time { return sim.Time(v) }
