package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// TestTieredBundleEquivalence runs the full tracer bundle over a traced
// SYN+AVP session under three tiering regimes — pinned to tier 0,
// promoted to tier 1 after the first fire, and the default mid-session
// promotion — and demands identical traces and identical runtime
// accounting. This is the bundle-level guarantee the profile-guided
// re-decode must uphold: tier 1 may only be faster, never different.
func TestTieredBundleEquivalence(t *testing.T) {
	runOnce := func(hotThreshold uint64, useDefault bool) (*trace.Trace, ebpf.RuntimeStats, float64) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 7})
		if !useDefault {
			w.Runtime().SetHotThreshold(hotThreshold)
		}
		b, err := NewBundle(w.Runtime())
		if err != nil {
			t.Fatal(err)
		}
		BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartRT(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartKernel(true); err != nil {
			t.Fatal(err)
		}
		apps.BuildSYN(w, apps.SYNConfig{})
		apps.BuildAVP(w, apps.AVPConfig{})
		b.StopInit()
		w.Run(3 * sim.Second)
		tr, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return tr, w.Runtime().Stats(), w.Runtime().CostNs()
	}

	t0Tr, t0St, t0Cost := runOnce(0, false)
	if t0Tr.Len() == 0 {
		t.Fatal("empty trace; session produced no events")
	}
	for _, tc := range []struct {
		name       string
		threshold  uint64
		useDefault bool
	}{
		{"tier1_immediate", 1, false},
		{"default_midsession", 0, true},
	} {
		tr, st, cost := runOnce(tc.threshold, tc.useDefault)
		if st != t0St {
			t.Fatalf("%s: runtime stats diverged: %+v, tier-0 %+v", tc.name, st, t0St)
		}
		if cost != t0Cost {
			t.Fatalf("%s: simulated probe cost diverged: %v, tier-0 %v", tc.name, cost, t0Cost)
		}
		if tr.Len() != t0Tr.Len() {
			t.Fatalf("%s: trace length diverged: %d, tier-0 %d", tc.name, tr.Len(), t0Tr.Len())
		}
		for i := range tr.Events {
			if tr.Events[i] != t0Tr.Events[i] {
				t.Fatalf("%s: event %d diverged:\n%v\ntier-0: %v",
					tc.name, i, tr.Events[i], t0Tr.Events[i])
			}
		}
	}
}

// TestTieredBundlePromotes sanity-checks that the tier-1 regime actually
// engages on the tracer programs (the equivalence above would pass
// vacuously if promotion never happened).
func TestTieredBundlePromotes(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 7})
	w.Runtime().SetHotThreshold(1)
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	apps.BuildAVP(w, apps.AVPConfig{})
	w.Run(time500ms)
	promoted := 0
	for _, p := range b.Programs() {
		if p.DecodeTier() >= 1 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no tracer program was promoted past tier 0")
	}
}

const time500ms = 500 * sim.Millisecond
