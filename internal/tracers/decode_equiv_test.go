package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// TestDecodedBundleEquivalence runs the full tracer bundle over a traced
// SYN+AVP session twice — once through the pre-decoded dispatch and once
// through the raw reference interpreter — and demands identical traces and
// identical runtime accounting. This is the program-bundle-level
// equivalence guarantee the load-time decoder must uphold.
func TestDecodedBundleEquivalence(t *testing.T) {
	runOnce := func(predecode bool) (*trace.Trace, uint64, uint64, float64) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 7})
		w.Runtime().SetPredecode(predecode)
		b, err := NewBundle(w.Runtime())
		if err != nil {
			t.Fatal(err)
		}
		BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartRT(); err != nil {
			t.Fatal(err)
		}
		if err := b.StartKernel(true); err != nil {
			t.Fatal(err)
		}
		apps.BuildSYN(w, apps.SYNConfig{})
		apps.BuildAVP(w, apps.AVPConfig{})
		b.StopInit()
		w.Run(3 * sim.Second)
		tr, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		st := w.Runtime().Stats()
		return tr, st.Runs, st.Insns, w.Runtime().CostNs()
	}

	decTr, decRuns, decInsns, decCost := runOnce(true)
	rawTr, rawRuns, rawInsns, rawCost := runOnce(false)

	if decRuns != rawRuns {
		t.Fatalf("program runs diverged: decoded %d, raw %d", decRuns, rawRuns)
	}
	if decInsns != rawInsns {
		t.Fatalf("retired instructions diverged: decoded %d, raw %d", decInsns, rawInsns)
	}
	if decCost != rawCost {
		t.Fatalf("simulated probe cost diverged: decoded %v, raw %v", decCost, rawCost)
	}
	if decTr.Len() != rawTr.Len() {
		t.Fatalf("trace length diverged: decoded %d, raw %d", decTr.Len(), rawTr.Len())
	}
	if decTr.Len() == 0 {
		t.Fatal("empty trace; session produced no events")
	}
	for i := range decTr.Events {
		if decTr.Events[i] != rawTr.Events[i] {
			t.Fatalf("event %d diverged:\ndecoded: %v\nraw:     %v",
				i, decTr.Events[i], rawTr.Events[i])
		}
	}
}
