package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// profileSession runs one traced AVP session and returns its bundle and
// trace. If loadFrom is non-empty the bundle seeds its warmup profiles
// from that file before any probe fires; checkWarm then verifies the
// restart-warmup guarantee at that moment.
func profileSession(t *testing.T, loadFrom string, checkWarm func(*Bundle)) (*Bundle, *trace.Trace) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 7})
	w.Runtime().SetHotThreshold(16)
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	if loadFrom != "" {
		applied, err := b.LoadProfiles(loadFrom)
		if err != nil {
			t.Fatal(err)
		}
		if applied == 0 {
			t.Fatal("saved profile seeded no programs")
		}
	}
	if checkWarm != nil {
		checkWarm(b)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	apps.BuildAVP(w, apps.AVPConfig{})
	w.Run(1 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return b, tr
}

// TestProfileRestartWarmup is the restart guarantee of profile
// persistence: a session saves its warmup profiles, and a re-created
// world that loads them dispatches at tier >= 1 from its very first fire
// — before a single probe has run — for every program the first session
// promoted. The warmed session's trace must also be identical to a cold
// session's: a loaded profile may only skip the warmup, never change
// behavior.
func TestProfileRestartWarmup(t *testing.T) {
	path := t.TempDir() + "/profiles.json"

	b1, coldTrace := profileSession(t, "", nil)
	promoted := map[string]int{}
	for name, tier := range b1.ProgramTiers() {
		if tier >= 1 {
			promoted[name] = tier
		}
	}
	if len(promoted) == 0 {
		t.Fatal("first session promoted nothing; the restart test would be vacuous")
	}
	if err := b1.SaveProfiles(path); err != nil {
		t.Fatal(err)
	}

	_, warmTrace := profileSession(t, path, func(b *Bundle) {
		tiers := b.ProgramTiers()
		for name := range promoted {
			if tiers[name] < 1 {
				t.Errorf("program %s at tier %d before first fire, want >= 1", name, tiers[name])
			}
		}
	})

	if warmTrace.Len() != coldTrace.Len() {
		t.Fatalf("warmed session trace has %d events, cold session %d", warmTrace.Len(), coldTrace.Len())
	}
	for i := range warmTrace.Events {
		if warmTrace.Events[i] != coldTrace.Events[i] {
			t.Fatalf("event %d diverged between warmed and cold session:\n%v\n%v",
				i, warmTrace.Events[i], coldTrace.Events[i])
		}
	}
}

// TestProfileIdentityGuard checks the identity validation: a profile
// saved under one hot threshold and program set applies only to programs
// whose name and instruction hash still match, and a missing file is a
// clean no-op.
func TestProfileIdentityGuard(t *testing.T) {
	path := t.TempDir() + "/profiles.json"

	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	w.Runtime().SetHotThreshold(0)
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := b.LoadProfiles(path); err != nil || n != 0 {
		t.Fatalf("missing profile file: applied %d, err %v; want 0, nil", n, err)
	}
	if err := b.SaveProfiles(path); err != nil {
		t.Fatal(err)
	}

	w2 := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	w2.Runtime().SetHotThreshold(0)
	b2, err := NewBundle(w2.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	profs := b.Profiles()
	if len(profs) == 0 {
		t.Fatal("no profiles snapshotted")
	}
	// Corrupt one profile's hash: it must be skipped, the rest applied.
	profs[0].Hash ^= 1
	if applied := b2.ApplyProfiles(profs); applied != len(profs)-1 {
		t.Fatalf("applied %d profiles, want %d (one stale hash skipped)", applied, len(profs)-1)
	}
}
