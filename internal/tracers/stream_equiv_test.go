package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// randomTracedWorld boots a world running a random pipeline plus
// background load under all three tracers — a workload whose topology
// varies with the seed, for property-style equivalence checks.
func randomTracedWorld(t *testing.T, seed uint64) (*rclcpp.World, *Bundle) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: seed})
	b, err := NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed * 977)
	apps.BuildRandomPipeline(w, rng, 1+int(seed%3), 1+int(seed%4))
	apps.BackgroundLoad(w, 2, 8, 0, 5*sim.Millisecond, 500*sim.Microsecond)
	b.StopInit()
	return w, b
}

// batchDrain is the pre-streaming Drain: decode every ring segment into
// a per-ring event slice, then batch-merge. It is the reference the
// streaming drain must match byte for byte.
func batchDrain(t *testing.T, b *Bundle) *trace.Trace {
	t.Helper()
	var streams []*trace.Trace
	for _, pb := range b.perfBuffers() {
		for cpu := 0; cpu < pb.NumRings(); cpu++ {
			recs := pb.DrainCPU(cpu)
			if len(recs) == 0 {
				continue
			}
			tr := &trace.Trace{Events: make([]trace.Event, 0, len(recs))}
			for _, rec := range recs {
				ev, err := DecodeRecord(rec)
				if err != nil {
					t.Fatal(err)
				}
				tr.Events = append(tr.Events, ev)
			}
			streams = append(streams, tr)
		}
	}
	return trace.Merge(streams...)
}

// TestStreamToMatchesBatchDrain is the streaming-equivalence property
// test: across random app workloads, StreamTo into a collector yields
// exactly the trace the batch drain builds — same events, same order.
func TestStreamToMatchesBatchDrain(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		wS, bS := randomTracedWorld(t, seed)
		wB, bB := randomTracedWorld(t, seed)
		wS.Run(2 * sim.Second)
		wB.Run(2 * sim.Second)

		var col trace.Collector
		if err := bS.StreamTo(&col); err != nil {
			t.Fatal(err)
		}
		got := &col.Trace
		want := batchDrain(t, bB)

		if got.Len() == 0 {
			t.Fatalf("seed %d: streamed session produced no events", seed)
		}
		if got.Len() != want.Len() {
			t.Fatalf("seed %d: streamed %d events, batch %d", seed, got.Len(), want.Len())
		}
		for i := range want.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("seed %d: event %d differs:\n stream: %v\n batch:  %v",
					seed, i, got.Events[i], want.Events[i])
			}
		}
	}
}

// TestStreamToDrainWrapperIdentity checks the Drain compatibility
// wrapper returns the streamed events exactly, sized without append
// growth.
func TestStreamToDrainWrapperIdentity(t *testing.T) {
	w1, b1 := randomTracedWorld(t, 9)
	w2, b2 := randomTracedWorld(t, 9)
	w1.Run(sim.Second)
	w2.Run(sim.Second)

	got, err := b1.Drain()
	if err != nil {
		t.Fatal(err)
	}
	var col trace.Collector
	if err := b2.StreamTo(&col); err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Trace.Len() {
		t.Fatalf("Drain %d events, StreamTo %d", got.Len(), col.Trace.Len())
	}
	for i := range got.Events {
		if got.Events[i] != col.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if cap(got.Events) != len(got.Events) {
		t.Errorf("Drain over-allocated: cap %d for %d events", cap(got.Events), len(got.Events))
	}
}

// TestPeriodicStreamBoundsBuffering drives one session with periodic
// segment drains and checks (a) the concatenated segment streams equal
// one whole-run drain of an identical session, and (b) peak buffered
// records — the largest undrained ring backlog ever observed — stay
// bounded by what a single period emits, far below the whole-run total.
func TestPeriodicStreamBoundsBuffering(t *testing.T) {
	wSeg, bSeg := randomTracedWorld(t, 4)
	wAll, bAll := randomTracedWorld(t, 4)

	const periods = 8
	total := 4 * sim.Second
	var col trace.Collector
	peakPending := 0
	perSegment := make([]int, 0, periods)
	for i := 0; i < periods; i++ {
		wSeg.Run(total / periods)
		pending := 0
		for _, pb := range bSeg.perfBuffers() {
			pending += pb.Pending()
		}
		if pending > peakPending {
			peakPending = pending
		}
		before := col.Trace.Len()
		if err := bSeg.StreamTo(&col); err != nil {
			t.Fatal(err)
		}
		perSegment = append(perSegment, col.Trace.Len()-before)
	}

	wAll.Run(total)
	whole, err := bAll.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if col.Trace.Len() != whole.Len() {
		t.Fatalf("segmented stream has %d events, whole-run %d", col.Trace.Len(), whole.Len())
	}
	for i := range whole.Events {
		if col.Trace.Events[i] != whole.Events[i] {
			t.Fatalf("event %d differs between segmented and whole-run drain", i)
		}
	}
	maxSeg := 0
	for _, n := range perSegment {
		if n > maxSeg {
			maxSeg = n
		}
	}
	if peakPending > maxSeg {
		t.Fatalf("peak pending backlog %d exceeds largest segment %d", peakPending, maxSeg)
	}
	if whole.Len() < 4*peakPending {
		t.Fatalf("segmentation did not bound buffering: peak %d vs total %d", peakPending, whole.Len())
	}
}
