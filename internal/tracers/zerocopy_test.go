package tracers

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// retainingSink keeps every Node/Topic string it sees alongside an
// eagerly-made byte copy of the same name. Under the zero-copy drain the
// strings come out of DecodeRecord while the record's Data still aliases
// a live arena chunk; if decoding ever leaked a string that shares that
// memory, the ring reusing the chunk on the next burst would rewrite the
// retained string out from under us and the copies would stop matching.
type retainingSink struct {
	names  []string
	copies [][]byte
}

func (s *retainingSink) Observe(e trace.Event) {
	for _, name := range [2]string{e.Node, e.Topic} {
		if name == "" {
			continue
		}
		s.names = append(s.names, name)
		s.copies = append(s.copies, []byte(name))
	}
}

func (s *retainingSink) check(t *testing.T, when string) {
	t.Helper()
	for i, name := range s.names {
		if name != string(s.copies[i]) {
			t.Fatalf("%s: retained name %d mutated: %q, copied %q", when, i, name, s.copies[i])
		}
	}
}

// TestStreamToRetainedNamesSurviveChunkReuse is the arena-lifetime
// guarantee at the sink boundary: a sink may retain Event.Node and
// Event.Topic forever — they are interned strings with their own
// backing, never aliases of ring memory — even though the records they
// were decoded from live in arena chunks that are released and rewritten
// by the very next emission burst. The world keeps running between
// drains, so the second StreamTo decodes out of the recycled chunks the
// first round's records occupied.
func TestStreamToRetainedNamesSurviveChunkReuse(t *testing.T) {
	w, b := randomTracedWorld(t, 5)
	sink := &retainingSink{}

	w.Run(1 * sim.Second)
	if err := b.StreamTo(sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.names) == 0 {
		t.Fatal("first drain delivered no named events; the retention test is vacuous")
	}
	firstRound := len(sink.names)
	sink.check(t, "after first drain")

	// Run more simulation: the rings recycle the chunks the first drain
	// released, overwriting the bytes the first round's records occupied.
	w.Run(1 * sim.Second)
	if err := b.StreamTo(sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.names) == firstRound {
		t.Fatal("second drain delivered no named events; chunk reuse never happened")
	}
	sink.check(t, "after chunk reuse")
}
