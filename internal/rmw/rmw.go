// Package rmw simulates the ROS MiddleWare interface layer
// (rmw_cyclonedds_cpp in the paper's stack). It owns the probed functions
// P1 (rmw_create_node), P6 (rmw_take_int), P10 (rmw_take_request) and
// P13 (rmw_take_response) of Table I.
//
// Each take function receives an entity descriptor (holding the callback
// handle and the topic/service name) and a source-timestamp out-parameter.
// The out-parameter's value is unknown at function entry — it is produced
// by lower DDS layers during the call — which is why the paper's tracer
// records its *address* at entry in a BPF map and dereferences it at exit.
// This layer materializes those argument structures in simulated process
// memory so the probe programs can do exactly that.
package rmw

import (
	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/umem"
)

// Probed symbols (Table I).
var (
	SymCreateNode   = ebpf.Symbol{Lib: "rmw_cyclonedds_cpp", Func: "rmw_create_node"}
	SymTakeInt      = ebpf.Symbol{Lib: "rmw_cyclonedds_cpp", Func: "rmw_take_int"}
	SymTakeRequest  = ebpf.Symbol{Lib: "rmw_cyclonedds_cpp", Func: "rmw_take_request"}
	SymTakeResponse = ebpf.Symbol{Lib: "rmw_cyclonedds_cpp", Func: "rmw_take_response"}
)

// Entity descriptor layout: the subscription/service/client structures all
// share {callback handle, pointer to topic/service name}.
const (
	EntityCBIDOff     = 0 // u64 callback handle
	EntityTopicPtrOff = 8 // char* topic or service name
)

// Entity is a middleware entity descriptor resident in process memory.
// Its callback handle doubles as the entity's identity, playing the role
// object addresses play in real rclcpp.
type Entity struct {
	Addr umem.Addr
	CBID uint64
}

// NewEntity materializes an entity descriptor in space. The callback
// handle is the address of a dedicated callback object allocation, so
// handles are unique across all processes and look like real pointers.
func NewEntity(space *umem.Space, name string) Entity {
	cbObj := space.AllocU64(0) // the "callback object"; its address is the handle
	nameAddr := space.AllocString(name)
	w := umem.NewStructWriter(space)
	w.U64(uint64(cbObj)) // EntityCBIDOff
	w.Ptr(nameAddr)      // EntityTopicPtrOff
	return Entity{Addr: w.Commit(), CBID: uint64(cbObj)}
}

// CreateNode simulates rmw_create_node, firing P1 with the node name as
// argument 0. The paper uses this to learn the PID executing each node's
// callbacks.
func CreateNode(rt *ebpf.Runtime, pid uint32, cpu int, space *umem.Space, name string) {
	nameAddr := space.AllocString(name)
	rt.FireUprobe(pid, cpu, SymCreateNode, uint64(nameAddr))
}

// TakeSite is a pre-resolved rmw_take_* probe pair. Callers resolve it
// once (per runtime) and fire through it on every take, avoiding the
// per-event symbol interning the ProbeSite mechanism exists to remove.
type TakeSite struct {
	site *ebpf.ProbeSite
}

// ResolveTake interns the take site for sym (one of SymTakeInt,
// SymTakeRequest, SymTakeResponse) on rt.
func ResolveTake(rt *ebpf.Runtime, sym ebpf.Symbol) TakeSite {
	return TakeSite{site: rt.Site(sym)}
}

// Take simulates the shared body of the rmw_take_* family: fire the entry
// probe with (entity, message, &srcTS), let "DDS" fill in the source
// timestamp, then fire the exit probe with the success return value.
func (t TakeSite) Take(pid uint32, cpu int, space *umem.Space, ent Entity, s *dds.Sample) {
	srcAddr := space.AllocU64(0) // out-parameter, unset at entry
	t.site.FireEntry(pid, cpu, uint64(ent.Addr), 0 /* message buffer */, uint64(srcAddr))
	space.WriteU64(srcAddr, uint64(s.SrcTS)) // lower layers produce the value
	t.site.FireReturn(pid, cpu, 1 /* RMW_RET_OK with data */)
}

// TakeInt simulates rmw_take_int for a subscription (P6) through a
// freshly resolved site; hot callers hold a TakeSite instead.
func TakeInt(rt *ebpf.Runtime, pid uint32, cpu int, space *umem.Space, ent Entity, s *dds.Sample) {
	ResolveTake(rt, SymTakeInt).Take(pid, cpu, space, ent, s)
}
