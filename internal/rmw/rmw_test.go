package rmw

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/umem"
)

func TestNewEntityLayout(t *testing.T) {
	space := umem.NewSpace(5)
	e := NewEntity(space, "lidar_rear/points_raw")
	if e.CBID == 0 {
		t.Fatal("zero handle")
	}
	cbid, err := space.ReadU64(e.Addr + umem.Addr(EntityCBIDOff))
	if err != nil || cbid != e.CBID {
		t.Fatalf("cbid field %#x err=%v", cbid, err)
	}
	namePtr, err := space.ReadU64(e.Addr + umem.Addr(EntityTopicPtrOff))
	if err != nil {
		t.Fatal(err)
	}
	name, err := space.ReadCString(umem.Addr(namePtr), 64)
	if err != nil || name != "lidar_rear/points_raw" {
		t.Fatalf("name %q err=%v", name, err)
	}
}

func TestEntitiesDistinct(t *testing.T) {
	space := umem.NewSpace(6)
	a := NewEntity(space, "/x")
	b := NewEntity(space, "/x")
	if a.CBID == b.CBID {
		t.Fatal("handles collide")
	}
}

// TestTakeWritesSrcTSBetweenProbes verifies the protocol the paper's srcTS
// technique depends on: at the entry firing the out-parameter is unset; by
// the exit firing it carries the sample's source timestamp.
func TestTakeWritesSrcTSBetweenProbes(t *testing.T) {
	space := umem.NewSpace(7)
	spaces := map[uint32]*umem.Space{7: space}
	rt := ebpf.NewRuntime(func() int64 { return 0 },
		func(pid uint32) *umem.Space { return spaces[pid] })

	var entrySrcAddr umem.Addr
	var entryVal, exitVal uint64
	hookEntry := rt.AttachNativeHook(SymTakeInt, ebpf.NativeHook{Fn: func(ctx *ebpf.ExecContext) {
		entrySrcAddr = umem.Addr(ctx.Words[2])
		entryVal, _ = space.ReadU64(entrySrcAddr)
	}})
	_ = hookEntry

	ent := NewEntity(space, "/scan")
	sample := &dds.Sample{Topic: "/scan", SrcTS: 987654321}
	TakeInt(rt, 7, 0, space, ent, sample)

	if entrySrcAddr == 0 {
		t.Fatal("entry hook never ran")
	}
	if entryVal != 0 {
		t.Fatalf("srcTS already set at entry: %d", entryVal)
	}
	exitVal, _ = space.ReadU64(entrySrcAddr)
	if exitVal != 987654321 {
		t.Fatalf("srcTS after call = %d", exitVal)
	}
}

func TestCreateNodeFiresP1(t *testing.T) {
	space := umem.NewSpace(8)
	spaces := map[uint32]*umem.Space{8: space}
	rt := ebpf.NewRuntime(func() int64 { return 0 },
		func(pid uint32) *umem.Space { return spaces[pid] })
	var gotName string
	rt.AttachNativeHook(SymCreateNode, ebpf.NativeHook{Fn: func(ctx *ebpf.ExecContext) {
		gotName, _ = space.ReadCString(umem.Addr(ctx.Words[0]), 64)
	}})
	CreateNode(rt, 8, 0, space, "voxel_grid_cloud_node")
	if gotName != "voxel_grid_cloud_node" {
		t.Fatalf("name = %q", gotName)
	}
}
