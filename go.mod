module github.com/tracesynth/rostracer

go 1.24
