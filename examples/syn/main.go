// SYN example: build the paper's synthetic application, trace it, and show
// how the framework identifies every scenario of Sec. VI — same-type
// callbacks, mixed nodes, multi-subscriber topics, multi-caller services
// (split into per-caller vertices), and message synchronization (AND
// junction) — plus the ablation against the naive service model.
//
//	go run ./examples/syn
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/tracesynth/rostracer/internal/analysis"
	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

func main() {
	s, err := harness.RunSession(7, 8, 30*sim.Second, true, func(w *rclcpp.World) {
		apps.BuildSYN(w, apps.SYNConfig{})
	})
	if err != nil {
		log.Fatal(err)
	}
	m := core.ExtractModel(s.Trace)
	dag := core.BuildDAG(m)

	fmt.Println("== synthesized SYN model (Fig. 3a) ==")
	fmt.Print(core.Summary(dag))

	fmt.Println("\n== scenario checks ==")
	sv3 := 0
	var and *core.Vertex
	for _, k := range dag.VertexKeys() {
		v := dag.Vertices[k]
		if v.Type == core.CBService && strings.Contains(k, "sv3") {
			sv3++
		}
		if v.IsAnd {
			and = v
		}
	}
	fmt.Printf("  (iv) sv3 called from two callers -> %d service vertices\n", sv3)
	if and != nil {
		fmt.Printf("  (v)  data synchronization -> AND junction in %s, output %v\n", and.Node, and.OutTopics)
	}
	clp3 := 0
	for _, e := range dag.Edges() {
		if e.Topic == "/clp3" {
			clp3++
		}
	}
	fmt.Printf("  (iii) /clp3 subscribed by %d callbacks\n", clp3)

	fmt.Println("\n== ablation: naive single-vertex service model ==")
	naive := core.BuildDAGNaive(m)
	n, spurious := analysis.SpuriousChains(dag, naive)
	fmt.Printf("  naive model introduces %d spurious chains, e.g.:\n", n)
	for i, c := range spurious {
		if i == 2 {
			break
		}
		fmt.Printf("    %s\n", c)
	}

	fmt.Println("\n== DOT ==")
	fmt.Print(core.ToDOT(dag, "SYN"))
}
