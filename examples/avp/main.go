// AVP example: reproduce the paper's case study end to end — trace the
// Autoware AVP LIDAR-localization pipeline over several runs, merge the
// per-run DAGs, and print Fig. 3b's structure with Table II's statistics,
// plus the downstream analyses the model enables.
//
//	go run ./examples/avp
package main

import (
	"fmt"
	"log"

	"github.com/tracesynth/rostracer/internal/analysis"
	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

func main() {
	const runs = 10
	const duration = 20 * sim.Second

	var dags []*core.DAG
	var lastModel *core.Model
	for run := 0; run < runs; run++ {
		s, err := harness.RunSession(uint64(run+1), 12, duration, true, func(w *rclcpp.World) {
			apps.BuildAVP(w, apps.AVPConfig{})
		})
		if err != nil {
			log.Fatal(err)
		}
		m := core.ExtractModel(s.Trace)
		dags = append(dags, core.BuildDAG(m))
		lastModel = m
	}
	dag := core.MergeDAGs(dags...)

	fmt.Println("== synthesized AVP localization model (Fig. 3b) ==")
	fmt.Print(core.Summary(dag))

	fmt.Println("\n== computation chains and response bounds ==")
	for _, c := range analysis.Chains(dag, 0) {
		fmt.Printf("  bound %.2f ms: ", analysis.ChainWCETBound(dag, c).Milliseconds())
		for i, k := range c.Keys {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(dag.Vertices[k].Label())
		}
		fmt.Println()
	}

	fmt.Println("\n== measured end-to-end latency (front LIDAR chain) ==")
	stats, dropped := analysis.ChainLatencies(lastModel, []string{
		apps.TopicFrontRaw, apps.TopicFrontFiltered, apps.TopicFused, apps.TopicDownsampled,
	})
	fmt.Printf("  %d flows: min %.2f ms, mean %.2f ms, max %.2f ms (%d incomplete)\n",
		stats.Count, stats.Min.Milliseconds(), stats.Mean.Milliseconds(),
		stats.Max.Milliseconds(), dropped)

	fmt.Println("\n== processor loads and a 4-core binding ==")
	loads := analysis.Loads(dag, sim.Duration(runs)*duration)
	for _, l := range loads {
		fmt.Printf("  %-64.64s %5.1f Hz %8.2f ms %6.1f%%\n",
			l.Key, l.RateHz, l.ACET.Milliseconds(), 100*l.Utilization)
	}
	binding := analysis.GreedyBinding(analysis.NodeLoads(loads), 4)
	for node, cpu := range binding.CPUOf {
		fmt.Printf("  cpu%d <- %s\n", cpu, node)
	}
	fmt.Printf("  max core load %.1f%%\n", 100*binding.MaxLoad)
}
