// Quickstart: trace a two-node ROS2 application and synthesize its timing
// model in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func main() {
	// 1. A simulated host: 4 CPUs, deterministic seed.
	world := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 42})

	// 2. Attach the three eBPF tracers (ROS2-INIT, ROS2-RT, Kernel).
	bundle, err := tracers.NewBundle(world.Runtime())
	if err != nil {
		log.Fatal(err)
	}
	tracers.BridgeSched(world.Machine(), world.Runtime())
	must(bundle.StartInit())
	must(bundle.StartRT())
	must(bundle.StartKernel(true))

	// 3. The application: a 10 Hz camera driver and a detector.
	camera := world.NewNode("camera_driver", 5, 0)
	frames := camera.CreatePublisher("/camera/frames")
	camera.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.TruncNormal{Mean: 2 * sim.Millisecond, Stddev: 300 * sim.Microsecond, Min: sim.Millisecond, Max: 4 * sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { frames.Publish("frame") },
	})
	detector := world.NewNode("object_detector", 5, 0)
	detections := detector.CreatePublisher("/detections")
	detector.CreateSubscription("/camera/frames", rclcpp.SimpleBody{
		ET:     sim.TruncNormal{Mean: 18 * sim.Millisecond, Stddev: 2 * sim.Millisecond, Min: 12 * sim.Millisecond, Max: 30 * sim.Millisecond},
		Action: func(*rclcpp.CallbackContext) { detections.Publish("boxes") },
	})

	// 4. Run 10 seconds of virtual time and collect the trace.
	world.Run(10 * sim.Second)
	tr, err := bundle.Drain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d trace events (%.1f kB)\n\n", tr.Len(), float64(bundle.TraceBytes())/1e3)

	// 5. Synthesize the timing model.
	dag := core.Synthesize(tr)
	fmt.Print(core.Summary(dag))
	fmt.Println()
	fmt.Print(core.ToDOT(dag, "quickstart"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
