// Multimode example: Fig. 2's per-scenario merging. Traces collected in a
// nominal mode and in a degraded mode (front LIDAR failed) are merged per
// mode, yielding a multi-mode timing model whose per-mode DAGs differ —
// the basis for mode-aware schedulability analysis.
//
//	go run ./examples/multimode
package main

import (
	"fmt"
	"log"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

func main() {
	mm := core.NewMultiModeDAG()

	for run := 0; run < 3; run++ {
		s, err := harness.RunSession(uint64(10+run), 8, 15*sim.Second, true, func(w *rclcpp.World) {
			apps.BuildAVP(w, apps.AVPConfig{})
		})
		if err != nil {
			log.Fatal(err)
		}
		mm.AddTrace("nominal", s.Trace)
	}
	for run := 0; run < 3; run++ {
		s, err := harness.RunSession(uint64(20+run), 8, 15*sim.Second, true, func(w *rclcpp.World) {
			apps.BuildAVP(w, apps.AVPConfig{NoFrontSensor: true})
		})
		if err != nil {
			log.Fatal(err)
		}
		mm.AddTrace("front-lidar-failed", s.Trace)
	}

	for _, mode := range mm.ModeNames() {
		d := mm.Modes[mode]
		fmt.Printf("== mode %q: %d vertices, %d edges ==\n", mode, len(d.Vertices), len(d.Edges()))
		fmt.Print(core.Summary(d))
		fmt.Println()
	}

	union := mm.Union()
	fmt.Printf("== union model: %d vertices, %d edges ==\n", len(union.Vertices), len(union.Edges()))
	fmt.Println("\nIn the degraded mode the fusion never completes, so the voxel-grid and")
	fmt.Println("localizer callbacks vanish from the model — a structural mode change that")
	fmt.Println("single-mode DAGs cannot express.")
}
