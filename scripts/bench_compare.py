#!/usr/bin/env python3
"""Compare a fresh benchmark JSON (bench_to_json.py output) against
BENCH_baseline.json and fail on regressions of the named hot-path
benchmarks.

Usage: bench_compare.py BASELINE.json NEW.json [--threshold 0.15]

A benchmark regresses when its ns/op exceeds the baseline by more than
the threshold (default 15%). Only the named hot-path benchmarks gate;
everything else is reported informationally. Benchmarks missing from
either side are reported and, if gated, fail the comparison (a renamed
hot benchmark must be renamed here too).
"""
import argparse
import json
import sys

# The hot-path benchmarks that gate: the per-event fire path, the ring
# emit/drain path, the streaming drain the tracers sustain, and the
# trace-store read paths.
GATED = [
    "BenchmarkEBPF_DispatchDecoded",
    "BenchmarkEBPF_DispatchTier2",
    "BenchmarkEBPF_ProbeDispatch",
    "BenchmarkEBPF_PerfEmitPerCPU",
    "BenchmarkBundle_StreamDrain",
    "BenchmarkBundle_BatchDrain",
    "BenchmarkTrace_MergePerCPUStreams",
    "BenchmarkAlg1_StreamModel",
    "BenchmarkStoreLoadSession",
    "BenchmarkStoreStreamSession",
    "BenchmarkStoreQuerySession",
    "BenchmarkSegmentWriteV2",
    "BenchmarkStoreStreamSessionParallel",
    "BenchmarkStoreQuerySessionParallel",
    "BenchmarkSegmentWriteV2Async",
    "BenchmarkMetricsSinkObserve",
    "BenchmarkSnapshotIncremental/preload=2s",
    "BenchmarkSnapshotIncremental/preload=8s",
    "BenchmarkSnapshotIncremental/preload=16s",
]

# Alloc regressions on the zero-alloc paths are failures at any size:
# the fire path (dispatch) and the streaming ring->sink drain, whose
# B/op is per-drain-constant under the zero-copy decode.
ZERO_ALLOC = [
    "BenchmarkEBPF_DispatchDecoded",
    "BenchmarkEBPF_DispatchTier2",
    "BenchmarkEBPF_ProbeDispatch",
    "BenchmarkBundle_StreamDrain",
    "BenchmarkMetricsSinkObserve",
]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=0.15)
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)["benchmarks"]
    with open(args.new) as f:
        new = json.load(f)["benchmarks"]

    failures = []
    rows = []
    for name in sorted(set(base) | set(new)):
        gated = name in GATED
        b, n = base.get(name), new.get(name)
        if b is None or n is None:
            side = "baseline" if b is None else "new run"
            rows.append((name, gated, f"missing from {side}"))
            if gated:
                failures.append(f"{name}: missing from {side}")
            continue
        ratio = n["ns_per_op"] / b["ns_per_op"] if b["ns_per_op"] else float("inf")
        note = f"{b['ns_per_op']:.0f} -> {n['ns_per_op']:.0f} ns/op ({ratio - 1:+.1%})"
        rows.append((name, gated, note))
        if gated and ratio > 1 + args.threshold:
            failures.append(f"{name}: {note} exceeds {args.threshold:.0%} threshold")
        if name in ZERO_ALLOC and n.get("allocs_per_op", 0) > b.get("allocs_per_op", 0):
            failures.append(
                f"{name}: allocs/op grew {b.get('allocs_per_op', 0)} -> {n.get('allocs_per_op', 0)}"
            )

    width = max(len(r[0]) for r in rows)
    for name, gated, note in rows:
        marker = "*" if gated else " "
        print(f"{marker} {name:<{width}}  {note}")
    print(f"\n(* = gated at {args.threshold:.0%} ns/op regression)")

    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        sys.exit(1)
    print("no gated regressions")


if __name__ == "__main__":
    main()
