#!/usr/bin/env python3
"""Convert `go test -bench -benchmem` output on stdin into the
BENCH_baseline.json snapshot: one entry per benchmark with ns/op, B/op and
allocs/op, plus the goos/goarch/cpu header for provenance."""
import json
import re
import sys

meta = {}
benches = {}
# The name group must not swallow the -N GOMAXPROCS suffix go test
# appends on multi-core machines, or baseline keys would depend on the
# machine's core count and never match a baseline taken elsewhere.
line_re = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op")
# B/op and allocs/op are matched separately because go test prints
# ReportMetric units (events/op, B/event, ...) between ns/op and the
# -benchmem columns; a single left-to-right pattern anchored at ns/op
# would stop at the first custom metric and silently drop the
# allocation columns for exactly the benchmarks that report extras —
# including the streaming-drain benchmarks the alloc gate watches.
bytes_re = re.compile(r"\s(\d+) B/op\b")
allocs_re = re.compile(r"\s(\d+) allocs/op\b")

for line in sys.stdin:
    line = line.rstrip("\n")
    for key in ("goos", "goarch", "cpu", "pkg"):
        if line.startswith(key + ":"):
            meta[key] = line.split(":", 1)[1].strip()
    m = line_re.match(line)
    if not m:
        continue
    name, iters, ns = m.group(1), int(m.group(2)), float(m.group(3))
    entry = {"iterations": iters, "ns_per_op": ns}
    if bm := bytes_re.search(line):
        entry["bytes_per_op"] = int(bm.group(1))
    if am := allocs_re.search(line):
        entry["allocs_per_op"] = int(am.group(1))
    # With -count=N, keep the fastest run: the minimum is the least
    # noise-contaminated estimate of a benchmark's true cost, so both
    # the baseline and the comparison side gate on min-of-N.
    if name not in benches or ns < benches[name]["ns_per_op"]:
        benches[name] = entry

if not benches:
    sys.stderr.write("bench_to_json: no benchmark lines found on stdin\n")
    sys.exit(1)

json.dump({"meta": meta, "benchmarks": benches}, sys.stdout, indent=2, sort_keys=True)
sys.stdout.write("\n")
