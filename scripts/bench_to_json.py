#!/usr/bin/env python3
"""Convert `go test -bench -benchmem` output on stdin into the
BENCH_baseline.json snapshot: one entry per benchmark with ns/op, B/op and
allocs/op, plus the goos/goarch/cpu header for provenance."""
import json
import re
import sys

meta = {}
benches = {}
# The name group must not swallow the -N GOMAXPROCS suffix go test
# appends on multi-core machines, or baseline keys would depend on the
# machine's core count and never match a baseline taken elsewhere.
line_re = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?"
)

for line in sys.stdin:
    line = line.rstrip("\n")
    for key in ("goos", "goarch", "cpu", "pkg"):
        if line.startswith(key + ":"):
            meta[key] = line.split(":", 1)[1].strip()
    m = line_re.match(line)
    if not m:
        continue
    name, iters, ns = m.group(1), int(m.group(2)), float(m.group(3))
    entry = {"iterations": iters, "ns_per_op": ns}
    if m.group(5) is not None:
        entry["bytes_per_op"] = int(m.group(5))
    if m.group(6) is not None:
        entry["allocs_per_op"] = int(m.group(6))
    # With -count=N, keep the fastest run: the minimum is the least
    # noise-contaminated estimate of a benchmark's true cost, so both
    # the baseline and the comparison side gate on min-of-N.
    if name not in benches or ns < benches[name]["ns_per_op"]:
        benches[name] = entry

if not benches:
    sys.stderr.write("bench_to_json: no benchmark lines found on stdin\n")
    sys.exit(1)

json.dump({"meta": meta, "benchmarks": benches}, sys.stdout, indent=2, sort_keys=True)
sys.stdout.write("\n")
