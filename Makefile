GO ?= go

.PHONY: all build test vet race check bench bench-smoke baseline

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the library packages (the parallel harness and
# the interned decode paths run under concurrency).
race:
	$(GO) test -race ./internal/...

check: vet build test race

# Full benchmark suite with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration structural smoke pass (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Regenerate the BENCH_baseline.json snapshot future perf PRs compare
# against.
baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms . | python3 scripts/bench_to_json.py > BENCH_baseline.json
	@echo wrote BENCH_baseline.json
