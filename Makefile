GO ?= go

.PHONY: all build test vet race check bench bench-smoke bench-compare stream-bench fmt-compat fuzz-smoke chaos chaos-race baseline metrics-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the library packages (the parallel harness and
# the interned decode paths run under concurrency).
race:
	$(GO) test -race ./internal/...

check: vet build test race metrics-smoke

# /metrics endpoint smoke: a live short session served over real HTTP and
# scraped concurrently with the drive loop, asserting the Prometheus
# exposition parses and carries the per-topic latency histograms and ring
# accounting. (A test rather than a curl script: the simulator outpaces
# the wall clock, so the binary exits before a shell could scrape it.)
metrics-smoke:
	$(GO) test -run TestMetricsEndpointSmoke -count=1 ./internal/harness

# Full benchmark suite with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration structural smoke pass (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Streaming-pipeline microbenchmarks: stream vs batch drain, the
# incremental model builder, and the trace-store read paths, with
# allocation reporting.
stream-bench:
	$(GO) test -run '^$$' -bench 'Bundle_|Alg1_|Trace_Merge|Store' -benchmem .

# Parallel storage pipeline at 1 and 4 scheduler threads: the speedup
# table in docs/PERFORMANCE.md comes from this target on a multi-core
# host (a single-core runner reports the coordination-overhead floor
# at both settings, not a speedup).
bench-parallel:
	$(GO) test -run '^$$' -bench 'StoreStreamSessionParallel|StoreQuerySessionParallel|SegmentWriteV2Async|StoreStreamSession$$|StoreQuerySession$$|SegmentWriteV2$$' -benchmem -cpu 1,4 .

# Run the suite and diff against BENCH_baseline.json: fails on >15% ns/op
# regression of the named hot-path benchmarks (scripts/bench_compare.py).
# -count=5 with min-of-N selection in bench_to_json keeps scheduler noise
# on a loaded machine from tripping the gate: five samples spread over
# the suite's runtime ride out contention bursts that min-of-3 caught.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms -count=5 . | python3 scripts/bench_to_json.py > /tmp/bench_new.json
	python3 scripts/bench_compare.py BENCH_baseline.json /tmp/bench_new.json

# Cross-version .rtrc compatibility suite (used by CI): v1 <-> v2 decoded
# equivalence at codec and store level, the v2 crash-recovery truncation
# sweep, v2 damage classification, indexed-query correctness against the
# sequential reference, and the v1/v2 fuzz equivalence seeds.
fmt-compat:
	$(GO) test -run 'TestFormatCompat|TestSegmentWriterFormatKnob|TestSegmentCrashRecovery|TestSalvage|TestFsck|TestQuerySession|FuzzV1V2Equivalence|FuzzV2Cursor' -count=1 ./internal/trace

# Short coverage-guided fuzz passes (used by CI): the binary trace codec
# (batch reader and streaming segment cursor), salvage over damaged
# segments, and the tier-0 vs tier-1 decode equivalence of random
# programs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadBinary -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzFileCursor -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzSalvage -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzV2Cursor -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz 'FuzzV1V2Equivalence$$' -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzTier1Equivalence -fuzztime 10s ./internal/ebpf

# Fault-injection chaos run: the full drain -> store -> synthesis
# pipeline under a seeded fault plan (transport drops, forced ring
# overruns, scripted disk failures) with exact loss accounting and a
# salvage pass over a deterministically damaged store.
chaos:
	$(GO) run ./cmd/experiments -run chaos -runs 1 -duration 5s

# The same chaos run under the race detector (via its harness test).
chaos-race:
	$(GO) test -race -run TestChaosExperiment -count=1 ./internal/harness

# Regenerate the BENCH_baseline.json snapshot future perf PRs compare
# against.
baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms -count=5 . | python3 scripts/bench_to_json.py > BENCH_baseline.json
	@echo wrote BENCH_baseline.json
