GO ?= go

.PHONY: all build test vet race check bench bench-smoke bench-compare stream-bench fuzz-smoke baseline

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the library packages (the parallel harness and
# the interned decode paths run under concurrency).
race:
	$(GO) test -race ./internal/...

check: vet build test race

# Full benchmark suite with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration structural smoke pass (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Streaming-pipeline microbenchmarks: stream vs batch drain, the
# incremental model builder, and the trace-store read paths, with
# allocation reporting.
stream-bench:
	$(GO) test -run '^$$' -bench 'Bundle_|Alg1_|Trace_Merge|Store' -benchmem .

# Run the suite and diff against BENCH_baseline.json: fails on >15% ns/op
# regression of the named hot-path benchmarks (scripts/bench_compare.py).
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms . | python3 scripts/bench_to_json.py > /tmp/bench_new.json
	python3 scripts/bench_compare.py BENCH_baseline.json /tmp/bench_new.json

# Short coverage-guided fuzz passes (used by CI): the binary trace codec
# (batch reader and streaming segment cursor) and the tier-0 vs tier-1
# decode equivalence of random programs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadBinary -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzFileCursor -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzTier1Equivalence -fuzztime 10s ./internal/ebpf

# Regenerate the BENCH_baseline.json snapshot future perf PRs compare
# against.
baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=200ms . | python3 scripts/bench_to_json.py > BENCH_baseline.json
	@echo wrote BENCH_baseline.json
